// Package histcheck is the chaos harness's oracle: a concurrent operation
// recorder plus a checker for the paper's per-color correctness claims
// (§6–§7). Instead of point assertions inside the workload, every client
// operation — append, read, trim, multi-color append — is recorded with
// its interval and outcome, and the full history is checked after the run
// against the final state of the log (Jepsen-style).
//
// Checked properties, per color:
//
//   - unique-sn: no two acknowledged appends share an assigned SN;
//   - durability: every acknowledged append (not covered by a trim)
//     appears in the final log at its SN with its exact payload;
//   - read-integrity: a read that returned data returned the payload of a
//     real append at that SN — never fabricated or mismatched bytes — and
//     any two successful reads of the same (color, SN) agree;
//   - read-linearizability: a read that returned not-found is a violation
//     if an append of that SN was acknowledged before the read began and
//     no trim that could cover the SN had started;
//   - trim: after an acknowledged trim up to SN t, the final log holds
//     nothing at or below t (no resurrection) and everything acked above
//     t (no lost suffix);
//   - multi-atomicity: a multi-color append is visible in all of its
//     target colors or in none, and in all if it was acknowledged.
//
// Operations that time out are indeterminate: their effects may or may
// not have applied, and the checker treats both outcomes as legal.
package histcheck

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/types"
)

// Kind labels one recorded operation.
type Kind uint8

// Operation kinds.
const (
	KindAppend Kind = iota
	KindRead
	KindTrim
	KindMulti
)

func (k Kind) String() string {
	switch k {
	case KindAppend:
		return "append"
	case KindRead:
		return "read"
	case KindTrim:
		return "trim"
	case KindMulti:
		return "multi-append"
	}
	return "unknown"
}

// Op is one completed client operation with its real-time interval.
type Op struct {
	ID    uint64
	Kind  Kind
	Color types.ColorID

	// Append: Data is the payload; SN the assigned number (when Acked).
	// Read: SN is the queried number; Data the returned payload.
	// Trim: SN is the trim point (inclusive).
	SN   types.SN
	Data []byte

	// Multi: per-target-color single-record payloads.
	Colors []types.ColorID
	Datas  [][]byte

	// Acked is true when the operation completed successfully. A false
	// value means error/timeout: the effect is indeterminate.
	Acked bool
	// NotFound is true for reads that returned the ⊥ result.
	NotFound bool

	Start, End time.Time
}

// Recorder collects operations concurrently. One recorder serves all
// workload goroutines of a run; Begin/finish pairs cost one mutex
// acquisition at completion only.
type Recorder struct {
	seq atomic.Uint64

	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// PendingOp is an operation that has begun but not yet completed. Exactly
// one finish call (Ack / Fail / ReadOK / ReadNotFound) must follow.
type PendingOp struct {
	r  *Recorder
	op Op
}

func (r *Recorder) begin(kind Kind, color types.ColorID) *PendingOp {
	return &PendingOp{r: r, op: Op{
		ID:    r.seq.Add(1),
		Kind:  kind,
		Color: color,
		Start: time.Now(),
	}}
}

// BeginAppend starts recording an append of data to color.
func (r *Recorder) BeginAppend(color types.ColorID, data []byte) *PendingOp {
	p := r.begin(KindAppend, color)
	p.op.Data = data
	return p
}

// BeginRead starts recording a read of sn from color.
func (r *Recorder) BeginRead(color types.ColorID, sn types.SN) *PendingOp {
	p := r.begin(KindRead, color)
	p.op.SN = sn
	return p
}

// BeginTrim starts recording a trim of color up to sn.
func (r *Recorder) BeginTrim(color types.ColorID, sn types.SN) *PendingOp {
	p := r.begin(KindTrim, color)
	p.op.SN = sn
	return p
}

// BeginMulti starts recording a multi-color append of one record per
// color (datas[i] goes to colors[i]).
func (r *Recorder) BeginMulti(colors []types.ColorID, datas [][]byte) *PendingOp {
	p := r.begin(KindMulti, 0)
	p.op.Colors = append([]types.ColorID(nil), colors...)
	p.op.Datas = append([][]byte(nil), datas...)
	return p
}

func (p *PendingOp) finish() {
	p.op.End = time.Now()
	p.r.mu.Lock()
	p.r.ops = append(p.r.ops, p.op)
	p.r.mu.Unlock()
}

// Ack completes the operation successfully. For appends, sn is the
// assigned sequence number; other kinds pass types.InvalidSN or the
// operation's own SN.
func (p *PendingOp) Ack(sn types.SN) {
	if p.op.Kind == KindAppend {
		p.op.SN = sn
	}
	p.op.Acked = true
	p.finish()
}

// Fail completes the operation with an error (indeterminate effect).
func (p *PendingOp) Fail() { p.finish() }

// ReadOK completes a read that returned data.
func (p *PendingOp) ReadOK(data []byte) {
	p.op.Acked = true
	p.op.Data = data
	p.finish()
}

// ReadNotFound completes a read that returned the ⊥ result.
func (p *PendingOp) ReadNotFound() {
	p.op.Acked = true
	p.op.NotFound = true
	p.finish()
}

// Ops snapshots the recorded history (completed operations only).
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// Len returns the number of completed operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Violation is one property breach found by Check.
type Violation struct {
	Prop string // property slug (unique-sn, durability, …)
	Op   uint64 // offending operation id (0 when final-state only)
	Msg  string
}

func (v Violation) String() string {
	if v.Op != 0 {
		return fmt.Sprintf("[%s] op %d: %s", v.Prop, v.Op, v.Msg)
	}
	return fmt.Sprintf("[%s] %s", v.Prop, v.Msg)
}

// FinalState is the quiesced end-of-run view the checker validates the
// history against: one full subscribe per color after all faults healed
// and recoveries finished.
type FinalState struct {
	Logs map[types.ColorID][]types.Record
}

// Check validates the recorded history against the final state and
// returns every violation found (empty means the run is linearizable
// under the checked properties).
func Check(ops []Op, final FinalState) []Violation {
	var out []Violation

	// Index the history.
	ackedBySN := make(map[types.ColorID]map[types.SN]*Op) // acked appends
	payloads := make(map[types.ColorID]map[string]bool)   // every attempted payload
	maxAckedTrim := make(map[types.ColorID]types.SN)      // trims known applied
	maxStartedTrim := make(map[types.ColorID]types.SN)    // trims possibly applied

	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case KindAppend:
			if payloads[op.Color] == nil {
				payloads[op.Color] = make(map[string]bool)
			}
			payloads[op.Color][string(op.Data)] = true
			if !op.Acked || !op.SN.Valid() {
				continue
			}
			if ackedBySN[op.Color] == nil {
				ackedBySN[op.Color] = make(map[types.SN]*Op)
			}
			if prev, dup := ackedBySN[op.Color][op.SN]; dup {
				if !bytes.Equal(prev.Data, op.Data) {
					out = append(out, Violation{
						Prop: "unique-sn", Op: op.ID,
						Msg: fmt.Sprintf("color %v SN %v acked for %q and (op %d) %q", op.Color, op.SN, op.Data, prev.ID, prev.Data),
					})
				}
				continue
			}
			ackedBySN[op.Color][op.SN] = op
		case KindTrim:
			if op.SN > maxStartedTrim[op.Color] {
				maxStartedTrim[op.Color] = op.SN
			}
			if op.Acked && op.SN > maxAckedTrim[op.Color] {
				maxAckedTrim[op.Color] = op.SN
			}
		case KindMulti:
			for i, c := range op.Colors {
				if payloads[c] == nil {
					payloads[c] = make(map[string]bool)
				}
				payloads[c][string(op.Datas[i])] = true
			}
		}
	}

	// Index the final logs: per color, SN -> payload, payload -> present.
	finalBySN := make(map[types.ColorID]map[types.SN][]byte)
	finalPayload := make(map[types.ColorID]map[string]bool)
	for color, recs := range final.Logs {
		bySN := make(map[types.SN][]byte, len(recs))
		byData := make(map[string]bool, len(recs))
		for _, rec := range recs {
			if prev, dup := bySN[rec.SN]; dup && !bytes.Equal(prev, rec.Data) {
				out = append(out, Violation{
					Prop: "unique-sn",
					Msg:  fmt.Sprintf("final log of color %v holds two records at SN %v", color, rec.SN),
				})
			}
			bySN[rec.SN] = rec.Data
			byData[string(rec.Data)] = true
		}
		finalBySN[color] = bySN
		finalPayload[color] = byData
	}

	// Durability + trim (no resurrection / no lost suffix).
	for color, appends := range ackedBySN {
		bySN := finalBySN[color]
		for sn, op := range appends {
			if sn <= maxStartedTrim[color] {
				// A trim that may have applied covers this SN: absence and
				// presence are both legal... unless an acked trim covers it,
				// which requires absence (checked below).
				if sn <= maxAckedTrim[color] {
					if _, present := bySN[sn]; present {
						out = append(out, Violation{
							Prop: "trim", Op: op.ID,
							Msg: fmt.Sprintf("color %v SN %v survived an acked trim up to %v", color, sn, maxAckedTrim[color]),
						})
					}
				}
				continue
			}
			got, present := bySN[sn]
			if !present {
				out = append(out, Violation{
					Prop: "durability", Op: op.ID,
					Msg: fmt.Sprintf("acked append %q (color %v, SN %v) missing from final log", op.Data, color, sn),
				})
				continue
			}
			if !bytes.Equal(got, op.Data) {
				out = append(out, Violation{
					Prop: "durability", Op: op.ID,
					Msg: fmt.Sprintf("final log color %v SN %v = %q, acked append was %q", color, sn, got, op.Data),
				})
			}
		}
		// No resurrection of records below an acked trim, appended or not.
		if t := maxAckedTrim[color]; t.Valid() {
			for sn := range bySN {
				if sn <= t {
					out = append(out, Violation{
						Prop: "trim",
						Msg:  fmt.Sprintf("final log of color %v holds SN %v below the acked trim frontier %v", color, sn, t),
					})
				}
			}
		}
	}

	// Read integrity and linearizability.
	readValue := make(map[types.ColorID]map[types.SN][]byte) // agreed read results
	for i := range ops {
		op := &ops[i]
		if op.Kind != KindRead || !op.Acked {
			continue
		}
		if op.NotFound {
			// ⊥ is a violation only if some append of this SN was acked
			// strictly before the read began AND no trim that could cover
			// the SN had started before the read ended.
			app := ackedBySN[op.Color][op.SN]
			if app == nil || !app.End.Before(op.Start) {
				continue
			}
			trimCovered := false
			for j := range ops {
				tr := &ops[j]
				if tr.Kind == KindTrim && tr.Color == op.Color && tr.SN >= op.SN && tr.Start.Before(op.End) {
					trimCovered = true
					break
				}
			}
			if !trimCovered {
				out = append(out, Violation{
					Prop: "read-linearizability", Op: op.ID,
					Msg: fmt.Sprintf("read of color %v SN %v returned ⊥, but append %d was acked before it and never trimmed", op.Color, op.SN, app.ID),
				})
			}
			continue
		}
		// Value returned: must match the acked append at that SN if one is
		// recorded, must be a payload some append attempt actually wrote,
		// and must agree with every other successful read of the SN.
		if app := ackedBySN[op.Color][op.SN]; app != nil && !bytes.Equal(app.Data, op.Data) {
			out = append(out, Violation{
				Prop: "read-integrity", Op: op.ID,
				Msg: fmt.Sprintf("read of color %v SN %v = %q, acked append %d wrote %q", op.Color, op.SN, op.Data, app.ID, app.Data),
			})
			continue
		}
		if pl := payloads[op.Color]; pl != nil && !pl[string(op.Data)] {
			out = append(out, Violation{
				Prop: "read-integrity", Op: op.ID,
				Msg: fmt.Sprintf("read of color %v SN %v returned fabricated payload %q", op.Color, op.SN, op.Data),
			})
			continue
		}
		if readValue[op.Color] == nil {
			readValue[op.Color] = make(map[types.SN][]byte)
		}
		if prev, ok := readValue[op.Color][op.SN]; ok {
			if !bytes.Equal(prev, op.Data) {
				out = append(out, Violation{
					Prop: "read-integrity", Op: op.ID,
					Msg: fmt.Sprintf("reads of color %v SN %v disagree: %q vs %q", op.Color, op.SN, op.Data, prev),
				})
			}
		} else {
			readValue[op.Color][op.SN] = op.Data
		}
	}

	// Multi-color atomicity: all-or-nothing, all if acked. Visibility is
	// judged by payload presence in the final logs (multi payloads are
	// generated unique by the workload).
	for i := range ops {
		op := &ops[i]
		if op.Kind != KindMulti {
			continue
		}
		visible := 0
		for j, c := range op.Colors {
			present := finalPayload[c][string(op.Datas[j])]
			// A trim that may have applied can erase a visible record;
			// treat trimmed colors as visible for the atomicity count when
			// absent (cannot distinguish "never appeared" from "trimmed").
			if !present && maxStartedTrim[c].Valid() {
				present = true
			}
			if present {
				visible++
			}
		}
		if op.Acked && visible != len(op.Colors) {
			out = append(out, Violation{
				Prop: "multi-atomicity", Op: op.ID,
				Msg: fmt.Sprintf("acked multi-append visible in %d of %d colors", visible, len(op.Colors)),
			})
		}
		if !op.Acked && visible != 0 && visible != len(op.Colors) {
			out = append(out, Violation{
				Prop: "multi-atomicity", Op: op.ID,
				Msg: fmt.Sprintf("unacked multi-append partially visible: %d of %d colors", visible, len(op.Colors)),
			})
		}
	}

	return out
}
