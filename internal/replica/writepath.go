package replica

import (
	"runtime"
	"sync"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// This file implements the replica's parallel write path: the keyed write
// lane that spreads mutation traffic across workers by color, and the
// order-request coalescer that batches the replica→sequencer edge.
//
// The write lane relies on two properties for correctness:
//
//   - per-color FIFO: the lane pins each color to one worker and the
//     delivery loop dispatches in arrival order, so two messages of the
//     same color are never reordered or concurrent. An AppendReq and the
//     OrderResp that commits it share a color, hence a worker.
//   - cross-color independence: appends and commits of different colors
//     share no state beyond r.mu (brief, pending-map bookkeeping), the
//     storage stack (per-color index locks + narrow allocator lock, see
//     internal/storage), and atomic counters. PM durability waits — the
//     long pole — overlap across workers and fold into shared group-commit
//     windows.
//
// Trim, sync-phase, and multi-append traffic stays on the serialized
// delivery loop: it is rare, touches multi-color state, and its protocols
// assume an ordered view of their own messages.

// writeClass keys mutation-class messages by color for the write lane.
// Only messages whose handlers are safe to run concurrently per color are
// classified; everything else stays on the delivery loop.
func writeClass(msg transport.Message) (uint64, bool) {
	switch m := msg.(type) {
	case proto.AppendReq:
		return uint64(m.Color), true
	case proto.AppendBatchReq:
		return uint64(m.Color), true
	case proto.OrderResp:
		return uint64(m.Color), true
	case proto.OrderRespBatch:
		return uint64(m.Color), true
	}
	return 0, false
}

// lanes builds the endpoint's lane configuration: the read lane
// (readpath.go) plus the keyed write lane.
func (r *Replica) lanes() transport.Lanes {
	l := transport.Lanes{Read: r.laneConfig()}
	if r.cfg.WriteWorkers > 0 {
		l.Write = transport.WriteLaneConfig{Workers: r.cfg.WriteWorkers, Key: writeClass, QoS: r.laneQoS()}
		if r.appendTr != nil {
			l.Write.Observe = func(queueWait, _ time.Duration) {
				r.appendTr.ObserveStage("lane_wait", queueWait)
			}
		}
	}
	return l
}

// onOrderRespBatch commits a batched set of assignments. Items share the
// batch's color, so on a write lane the whole batch runs on that color's
// worker, FIFO with the appends it commits.
func (r *Replica) onOrderRespBatch(m proto.OrderRespBatch) {
	for _, it := range m.Items {
		r.onOrderResp(proto.OrderResp{Token: it.Token, LastSN: it.LastSN, NRecords: it.NRecords, Color: m.Color})
	}
}

// ---- Order-request coalescing ----

// orderCoalescer accumulates order requests per color for one batching
// window and ships them as a single OrderReqBatch per color — the
// replica→leaf edge of the ordering tree batches the same way the tree
// already aggregates upward (§5.2). With W concurrent writers on one
// shard, the sequencer edge carries ~2 messages per window instead of ~2W.
type orderCoalescer struct {
	r *Replica

	mu      sync.Mutex
	byColor map[types.ColorID][]proto.OrderItem
	order   []types.ColorID // flush in first-arrival order

	kick chan struct{}
}

func newOrderCoalescer(r *Replica) *orderCoalescer {
	return &orderCoalescer{
		r:       r,
		byColor: make(map[types.ColorID][]proto.OrderItem),
		kick:    make(chan struct{}, 1),
	}
}

// enqueue adds one order request to the color's pending batch and wakes
// the flusher.
func (c *orderCoalescer) enqueue(color types.ColorID, it proto.OrderItem) {
	c.mu.Lock()
	q, ok := c.byColor[color]
	if !ok {
		c.order = append(c.order, color)
	}
	c.byColor[color] = append(q, it)
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// loop mirrors the sequencer's flusher: each kick opens one batching
// window (Config.OrderBatchInterval), then everything pending flushes.
func (c *orderCoalescer) loop() {
	defer c.r.wg.Done()
	window := c.r.cfg.OrderBatchInterval
	for {
		select {
		case <-c.r.stopCh:
			return
		case <-c.kick:
		}
		if window > 0 {
			if window >= time.Millisecond {
				time.Sleep(window)
			} else {
				start := time.Now()
				for time.Since(start) < window {
					runtime.Gosched() // let concurrent appends join the window
				}
			}
		}
		c.flush()
	}
}

// flush sends one OrderReqBatch per pending color to the leaf sequencer.
func (c *orderCoalescer) flush() {
	c.mu.Lock()
	if len(c.order) == 0 {
		c.mu.Unlock()
		return
	}
	byColor := c.byColor
	order := c.order
	c.byColor = make(map[types.ColorID][]proto.OrderItem)
	c.order = nil
	c.mu.Unlock()

	r := c.r
	sh, err := r.topo.Shard(r.cfg.Shard)
	if err != nil {
		// The topology cannot name our shard: the requests are dropped
		// here and re-driven by the pending-order retry timer.
		var n uint64
		for _, items := range byColor {
			n += uint64(len(items))
		}
		r.stats.oreqDrops.Add(n)
		return
	}
	seq := r.sequencer()
	replicas := r.orderReplicas(sh.Replicas)
	for _, color := range order {
		items := byColor[color]
		if len(items) == 1 {
			// Single request: keep the compact legacy frame.
			r.ep.Send(seq, proto.OrderReq{
				Color: color, Token: items[0].Token, NRecords: items[0].NRecords,
				Shard: r.cfg.Shard, Replicas: replicas,
			})
			continue
		}
		r.ep.Send(seq, proto.OrderReqBatch{
			Color: color, Shard: r.cfg.Shard, Replicas: replicas, Items: items,
		})
	}
}
