package replica

import (
	"fmt"
	"slices"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/types"
)

// This file publishes the replica into the observability registry and
// hosts its request tracing.
//
// Counters are func-backed over the existing atomic counters struct (the
// read and write lanes keep bumping the same atomics; scrapes read them).
// Tracing is two Tracers — op="append" and op="read" — whose stage
// histograms decompose where a request's latency goes on this node:
//
//	append: lane_wait → persist → order_wait → commit
//	read:   lane_wait → serve
//
// lane_wait is recorded in aggregate by the transport lane's Observe hook
// (per-request correlation through the lane would need the lane to carry
// the trace, which the hot path should not pay for); the other append
// stages are stamped per request via pendingOrder and folded into the
// slow-request ring when the end-to-end latency crosses Config.TraceSlow.

// initObs creates the tracers and registers the counter publications.
// No-op when Config.Obs is nil: the tracers stay nil and every recording
// call no-ops.
func (r *Replica) initObs() {
	reg := r.cfg.Obs
	if reg == nil {
		return
	}
	slow := r.cfg.TraceSlow
	if slow <= 0 {
		slow = time.Millisecond
	}
	lb := obs.Labels{"node": fmt.Sprintf("%d", r.cfg.ID)}
	r.appendTr = obs.NewTracer(reg, "append", lb, slow, r.cfg.TraceRing)
	r.readTr = obs.NewTracer(reg, "read", lb, slow, r.cfg.TraceRing)

	for _, c := range []struct {
		name string
		help string
		fn   func() uint64
	}{
		{"flexlog_replica_appends_total", "Append requests processed (AppendReq handler entries).", r.stats.appends.Load},
		{"flexlog_replica_batch_appends_total", "Client-side coalesced batches processed (AppendBatchReq).", r.stats.batchAppends.Load},
		{"flexlog_replica_batch_records_total", "Records carried by coalesced batches.", r.stats.batchRecords.Load},
		{"flexlog_replica_commits_total", "Order responses applied (SN assignments committed).", r.stats.commits.Load},
		{"flexlog_replica_reads_total", "Read requests served.", r.stats.reads.Load},
		{"flexlog_replica_held_reads_total", "Reads parked for a not-yet-seen SN.", r.stats.heldReads.Load},
		{"flexlog_replica_held_wakeups_total", "Parked reads released by a satisfying commit.", r.stats.heldWakeups.Load},
		{"flexlog_replica_read_misses_total", "Reads answered with bottom (hole or trimmed).", r.stats.readMisses.Load},
		{"flexlog_replica_subscribes_total", "Subscribe requests served.", r.stats.subscribes.Load},
		{"flexlog_replica_trims_total", "Trim requests applied.", r.stats.trims.Load},
		{"flexlog_replica_oreq_retries_total", "Order requests re-issued after RetryTimeout.", r.stats.oreqRetries.Load},
		{"flexlog_replica_append_drops_total", "Appends dropped because persistence failed (capacity/oversize).", r.stats.appendDrops.Load},
		{"flexlog_replica_oreq_drops_total", "Order requests dropped on topology lookup failure.", r.stats.oreqDrops.Load},
		{"flexlog_replica_syncs_total", "Sync-phase runs completed.", r.stats.syncs.Load},
		{"flexlog_replica_sync_retries_total", "Stalled sync-phase stages re-driven.", r.stats.syncRetries.Load},
		{"flexlog_replica_sync_aborts_total", "Wedged sync runs abandoned.", r.stats.syncAborts.Load},
		{"flexlog_replica_replays_total", "Multi-append record sets replayed.", r.stats.replays.Load},
		{"flexlog_replica_join_rounds_total", "Join catch-up fetch rounds ingested.", r.stats.joinRounds.Load},
		{"flexlog_replica_join_records_total", "Records ingested through join catch-up.", r.stats.joinRecords.Load},
		{"flexlog_replica_reconfig_rejects_total", "Appends rejected with Reject(reconfiguring) while draining.", r.stats.reconfigRejects.Load},
		{"flexlog_replica_topo_applies_total", "Topology snapshots adopted from TopoUpdate broadcasts.", r.stats.topoApplies.Load},
	} {
		reg.CounterFunc(c.name, c.help, lb, c.fn)
	}
	// Per-tenant QoS accounting, one series per declared tenant plus the
	// default tenant — cardinality stays bounded by the operator's tenant
	// list even if traffic carries arbitrary tenant ids.
	ids := []types.TenantID{types.DefaultTenant}
	for _, t := range r.cfg.Tenants {
		if !slices.Contains(ids, t.ID) {
			ids = append(ids, t.ID)
		}
	}
	slices.Sort(ids)
	for _, id := range ids {
		c := r.tenantCounters(id)
		tlb := obs.Labels{"node": fmt.Sprintf("%d", r.cfg.ID), "tenant": fmt.Sprintf("%d", id)}
		for _, f := range []struct {
			name string
			help string
			fn   func() uint64
		}{
			{"flexlog_replica_tenant_appends_total", "Admitted append requests per tenant.", c.appends.Load},
			{"flexlog_replica_tenant_records_total", "Records carried by admitted appends per tenant.", c.records.Load},
			{"flexlog_replica_tenant_reads_total", "Read requests served per tenant.", c.reads.Load},
			{"flexlog_replica_tenant_throttled_total", "Appends rejected by token-bucket admission per tenant.", c.throttled.Load},
			{"flexlog_replica_tenant_shed_total", "Requests shed from full QoS lane queues per tenant.", c.shed.Load},
		} {
			reg.CounterFunc(f.name, f.help, tlb, f.fn)
		}
	}
	reg.GaugeFunc("flexlog_replica_held_reads",
		"Reads currently parked awaiting their SN.", lb,
		func() float64 { return float64(r.held.size()) })
	reg.GaugeFunc("flexlog_replica_pending_orders",
		"Appends persisted but still awaiting a sequence number.", lb,
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.pending))
		})
	reg.GaugeFunc("flexlog_replica_mode",
		"Replica mode: 0 operational, 1 syncing, 2 crashed, 3 stopped, 4 joining, 5 draining.", lb,
		func() float64 { return float64(r.mode.load()) })
	reg.GaugeFunc("flexlog_replica_join_lag",
		"Estimated records behind the donor while joining (0 when not joining).", lb,
		func() float64 {
			if r.mode.load() != ModeJoining {
				return 0
			}
			return float64(r.joinLag.Load())
		})
}

// traceAppend folds one committed append into the append tracer: persist
// was measured in doAppend, order_wait is send→OrderResp arrival, commit
// is the storage commit. Called only when the tracer was enabled at both
// ends (commitStart and arrivedAt non-zero).
func (r *Replica) traceAppend(token types.Token, po *pendingOrder, commitStart time.Time) {
	now := time.Now()
	spans := []obs.Span{{Name: "persist", D: po.persistD}}
	if !po.sentAt.IsZero() && commitStart.After(po.sentAt) {
		spans = append(spans, obs.Span{Name: "order_wait", D: commitStart.Sub(po.sentAt)})
	}
	spans = append(spans, obs.Span{Name: "commit", D: now.Sub(commitStart)})
	r.appendTr.Observe(fmt.Sprintf("tok=%#x", uint64(token)), now.Sub(po.arrivedAt), spans)
}

// LaneSnapshots reports this replica's transport lane state for
// /debug/lanes on custom (TCP) endpoints, where the lanes are
// handler-level and invisible to a Network. Nil for network-managed
// replicas — the Cluster harness reads those via Network.LaneStats.
func (r *Replica) LaneSnapshots() []obs.LaneSnapshot {
	node := fmt.Sprintf("%d", r.cfg.ID)
	var out []obs.LaneSnapshot
	if r.laneStats != nil {
		ls := r.laneStats()
		out = append(out, obs.LaneSnapshot{
			Node: node, Lane: "read",
			Enqueued: ls.Enqueued, Dequeued: ls.Dequeued,
			MaxDepth: ls.MaxDepth, Busy: ls.Busy,
			Shed: ls.Shed,
		})
	}
	if r.wlaneStats != nil {
		ws := r.wlaneStats()
		out = append(out, obs.LaneSnapshot{
			Node: node, Lane: "write",
			Enqueued: ws.Enqueued, Dequeued: ws.Dequeued,
			MaxDepth: ws.MaxDepth, Busy: ws.Busy,
			Drops: r.stats.appendDrops.Load(),
			Shed:  ws.Shed,
		})
	}
	return out
}

// Tracers returns the replica's request tracers for the debug server
// (empty when observability is off).
func (r *Replica) Tracers() []*obs.Tracer {
	var out []*obs.Tracer
	if r.appendTr != nil {
		out = append(out, r.appendTr)
	}
	if r.readTr != nil {
		out = append(out, r.readTr)
	}
	return out
}
