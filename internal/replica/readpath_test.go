package replica

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// TestEarlyBufferEvictsOldestNotNewest is the regression test for the
// early-OrderResp eviction: the old random map-iteration eviction could
// evict the entry that was just inserted, stalling that append until the
// sequencer's retry. Eviction must drop the oldest live entry instead.
func TestEarlyBufferEvictsOldestNotNewest(t *testing.T) {
	r := &Replica{
		cfg:   Config{EarlyBound: 3},
		early: make(map[types.Token]proto.OrderResp),
	}
	resp := func(i int) proto.OrderResp {
		return proto.OrderResp{Token: types.Token(i), LastSN: types.MakeSN(1, uint32(i))}
	}
	for i := 1; i <= 3; i++ {
		r.bufferEarly(resp(i))
	}
	// Overflow: token 1 (oldest) must go; token 4 (newest) must stay.
	r.bufferEarly(resp(4))
	if len(r.early) != 3 {
		t.Fatalf("early size = %d, want 3", len(r.early))
	}
	if _, ok := r.early[types.Token(4)]; !ok {
		t.Fatal("just-inserted early entry was evicted")
	}
	if _, ok := r.early[types.Token(1)]; ok {
		t.Fatal("oldest early entry survived eviction")
	}

	// Stale queue entries (consumed by onAppend) are skipped, not counted:
	// consuming token 2 then overflowing must evict token 3, not 4 or 5.
	delete(r.early, types.Token(2))
	r.bufferEarly(resp(5))
	r.bufferEarly(resp(6))
	for _, want := range []int{4, 5, 6} {
		if _, ok := r.early[types.Token(want)]; !ok {
			t.Fatalf("token %d missing from early buffer: %v", want, r.early)
		}
	}

	// Degenerate bound: with room for one entry the newest always wins.
	r2 := &Replica{cfg: Config{EarlyBound: 1}, early: make(map[types.Token]proto.OrderResp)}
	for i := 10; i < 20; i++ {
		r2.bufferEarly(resp(i))
		if _, ok := r2.early[types.Token(i)]; !ok {
			t.Fatalf("bound=1: just-inserted token %d evicted", i)
		}
		if len(r2.early) != 1 {
			t.Fatalf("bound=1: early size = %d", len(r2.early))
		}
	}
}

// TestEarlyBufferCompactsStaleQueue checks that the insertion-order queue
// does not grow without bound when onAppend keeps consuming entries (the
// map shrinks but the queue only grows until compaction).
func TestEarlyBufferCompactsStaleQueue(t *testing.T) {
	r := &Replica{cfg: Config{EarlyBound: 1 << 20}, early: make(map[types.Token]proto.OrderResp)}
	for i := 0; i < 10_000; i++ {
		tok := types.Token(i)
		r.bufferEarly(proto.OrderResp{Token: tok, LastSN: types.MakeSN(1, uint32(i))})
		delete(r.early, tok) // as onAppend does when the AppendReq arrives
	}
	if len(r.earlyOrder) > 1024 {
		t.Fatalf("earlyOrder grew to %d entries with an empty map", len(r.earlyOrder))
	}
}

// TestSubscribeErrorSendsEmptyResp: a failed storage scan must still
// answer the subscriber (an empty view, like a lagging replica) instead
// of leaving it to time out.
func TestSubscribeErrorSendsEmptyResp(t *testing.T) {
	h := newHarness(t, 1)
	token := types.MakeToken(1, 1)
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("v")}, Client: 500})
	h.grant(h.expectOrderReq(t, token), types.MakeSN(1, 1))
	h.waitClient(t, func(m transport.Message) bool {
		_, ok := m.(proto.AppendAck)
		return ok
	})

	// Power-fail the devices (not the replica): the scan's record read fails.
	h.replicas[0].Store().Crash()
	h.cliEP.Send(1, proto.SubscribeReq{ID: 77, Color: 0})
	m := h.waitClient(t, func(m transport.Message) bool {
		sr, ok := m.(proto.SubscribeResp)
		return ok && sr.ID == 77
	})
	if sr := m.(proto.SubscribeResp); len(sr.Records) != 0 {
		t.Fatalf("subscribe over crashed storage returned %d records", len(sr.Records))
	}
}

// TestConcurrentReadsServedOnLane drives many parallel reads through a
// replica with lane workers enabled and checks results stay correct while
// the lane (not the delivery loop) serves them.
func TestConcurrentReadsServedOnLane(t *testing.T) {
	h := newHarness(t, 1)
	const n = 64
	for i := 1; i <= n; i++ {
		tok := types.MakeToken(1, uint32(i))
		h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: tok, Records: [][]byte{[]byte(fmt.Sprintf("v%d", i))}, Client: 500})
		h.grant(h.expectOrderReq(t, tok), types.MakeSN(1, uint32(i)))
		h.waitClient(t, func(m transport.Message) bool {
			ack, ok := m.(proto.AppendAck)
			return ok && ack.Token == tok
		})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	resps := make(chan proto.ReadResp, n)
	done := make(chan struct{})
	go func() {
		seen := 0
		for {
			select {
			case m := <-h.cliCh:
				if rr, ok := m.(proto.ReadResp); ok {
					resps <- rr
					seen++
					if seen == n {
						close(done)
						return
					}
				}
			case <-time.After(5 * time.Second):
				close(done)
				return
			}
		}
	}()
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := h.cliEP.Send(1, proto.ReadReq{ID: uint64(i), Color: 0, SN: types.MakeSN(1, uint32(i))}); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	<-done
	close(resps)
	got := 0
	for rr := range resps {
		if !rr.Found {
			t.Fatalf("read %d not found", rr.ID)
		}
		want := fmt.Sprintf("v%d", rr.ID)
		if string(rr.Data) != want {
			t.Fatalf("read %d returned %q, want %q", rr.ID, rr.Data, want)
		}
		got++
	}
	if got != n {
		t.Fatalf("got %d read responses, want %d", got, n)
	}
	ls, ok := h.net.LaneStats(1)
	if !ok || ls.Enqueued < n {
		t.Fatalf("lane stats = %+v (ok=%v), want >= %d enqueued", ls, ok, n)
	}
}

// TestHeldReadWokenBySatisfyingCommitOnly checks the striped registry
// wakes a parked read when its SN commits, and that commits of other
// colors do not release it early.
func TestHeldReadWokenBySatisfyingCommitOnly(t *testing.T) {
	h := newHarness(t, 1)
	r := h.replicas[0]

	// Park a read above the frontier of color 0.
	sn := types.MakeSN(1, 5)
	h.cliEP.Send(1, proto.ReadReq{ID: 9, Color: 0, SN: sn})
	deadline := time.Now().Add(2 * time.Second)
	for r.HeldReads() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read was never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A commit on another color must not wake it.
	tok2 := types.MakeToken(2, 1)
	h.cliEP.Send(1, proto.AppendReq{Color: 7, Token: tok2, Records: [][]byte{[]byte("other")}, Client: 500})
	h.grant(h.expectOrderReq(t, tok2), types.MakeSN(1, 9))
	h.waitClient(t, func(m transport.Message) bool {
		ack, ok := m.(proto.AppendAck)
		return ok && ack.Token == tok2
	})
	if r.HeldReads() == 0 {
		t.Fatal("held read released by a commit of a different color")
	}

	// The satisfying commit wakes it with the data.
	tok := types.MakeToken(1, 1)
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: tok, Records: [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}, Client: 500})
	h.grant(h.expectOrderReq(t, tok), sn)
	m := h.waitClient(t, func(m transport.Message) bool {
		rr, ok := m.(proto.ReadResp)
		return ok && rr.ID == 9
	})
	rr := m.(proto.ReadResp)
	if !rr.Found || string(rr.Data) != "e" {
		t.Fatalf("woken read = %+v, want found data %q", rr, "e")
	}
	st := r.Stats()
	if st.HeldWakeups == 0 {
		t.Fatalf("stats.HeldWakeups = 0 after wakeup; stats = %+v", st)
	}
}
