package replica

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// harness wires one shard of replicas with a fake sequencer and a fake
// client endpoint for direct protocol-level tests (the end-to-end paths
// are covered by the core package's integration suite).
type harness struct {
	stash    []transport.Message
	net      *transport.Network
	topo     *topology.Topology
	replicas []*Replica
	seqCh    chan proto.OrderReq
	cliCh    chan transport.Message
	seqEP    transport.Endpoint
	cliEP    transport.Endpoint
}

func newHarness(t *testing.T, replicas int) *harness {
	t.Helper()
	h := &harness{
		net:   transport.NewNetwork(transport.ZeroLink()),
		topo:  topology.New(),
		seqCh: make(chan proto.OrderReq, 1024),
		cliCh: make(chan transport.Message, 1024),
	}
	const seqID, cliID = 900, 500
	if err := h.topo.AddRegion(0, 0, seqID, nil); err != nil {
		t.Fatal(err)
	}
	ids := make([]types.NodeID, replicas)
	for i := range ids {
		ids[i] = types.NodeID(i + 1)
	}
	if err := h.topo.AddShard(1, 0, ids); err != nil {
		t.Fatal(err)
	}
	var err error
	h.seqEP, err = h.net.Register(seqID, func(from types.NodeID, msg transport.Message) {
		if req, ok := msg.(proto.OrderReq); ok {
			h.seqCh <- req
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	h.cliEP, err = h.net.Register(cliID, func(from types.NodeID, msg transport.Message) {
		h.cliCh <- msg
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		cfg := DefaultConfig()
		cfg.ID = id
		cfg.Shard = 1
		cfg.Topo = h.topo
		cfg.ReadHoldTimeout = 5 * time.Millisecond
		cfg.HeartbeatInterval = 2 * time.Millisecond
		cfg.RetryTimeout = 25 * time.Millisecond
		r, err := New(cfg, h.net)
		if err != nil {
			t.Fatal(err)
		}
		h.replicas = append(h.replicas, r)
		t.Cleanup(r.Stop)
	}
	return h
}

// expectOrderReq waits for (deduplicated) order requests for a token.
func (h *harness) expectOrderReq(t *testing.T, token types.Token) proto.OrderReq {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case req := <-h.seqCh:
			if req.Token == token {
				return req
			}
		case <-deadline:
			t.Fatalf("no OrderReq for %v", token)
		}
	}
}

// grant broadcasts the OrderResp for a request as the sequencer would.
func (h *harness) grant(req proto.OrderReq, sn types.SN) {
	h.seqEP.Broadcast(req.Replicas, proto.OrderResp{
		Token: req.Token, LastSN: sn, NRecords: req.NRecords, Color: req.Color,
	})
}

func (h *harness) waitClient(t *testing.T, match func(transport.Message) bool) transport.Message {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m := <-h.cliCh:
			if match(m) {
				return m
			}
		case <-deadline:
			t.Fatal("timed out waiting for client message")
		}
	}
}

func TestAppendCommitAck(t *testing.T) {
	h := newHarness(t, 3)
	token := types.MakeToken(1, 1)
	req := proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("v")}, Client: 500}
	h.cliEP.Broadcast([]types.NodeID{1, 2, 3}, req)

	oreq := h.expectOrderReq(t, token)
	if oreq.NRecords != 1 || len(oreq.Replicas) != 3 {
		t.Fatalf("order req = %+v", oreq)
	}
	h.grant(oreq, types.MakeSN(1, 1))

	// All three replicas ack the client.
	acks := 0
	for acks < 3 {
		m := h.waitClient(t, func(m transport.Message) bool {
			_, ok := m.(proto.AppendAck)
			return ok
		})
		ack := m.(proto.AppendAck)
		if ack.SN != types.MakeSN(1, 1) {
			t.Fatalf("ack SN = %v", ack.SN)
		}
		acks++
	}
	// The record is committed everywhere.
	for _, r := range h.replicas {
		if got, err := r.Store().Get(0, types.MakeSN(1, 1)); err != nil || string(got) != "v" {
			t.Fatalf("replica %v store: %q, %v", r.ID(), got, err)
		}
	}
}

func TestEarlyOrderRespBuffered(t *testing.T) {
	h := newHarness(t, 1)
	token := types.MakeToken(1, 2)
	// OResp arrives BEFORE the append broadcast (race §6.1).
	h.seqEP.Send(1, proto.OrderResp{Token: token, LastSN: types.MakeSN(1, 7), NRecords: 1, Color: 0})
	time.Sleep(5 * time.Millisecond)
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("late")}, Client: 500})
	m := h.waitClient(t, func(m transport.Message) bool {
		ack, ok := m.(proto.AppendAck)
		return ok && ack.Token == token
	})
	if m.(proto.AppendAck).SN != types.MakeSN(1, 7) {
		t.Fatalf("ack = %+v", m)
	}
}

func TestReadFoundAndBottom(t *testing.T) {
	h := newHarness(t, 1)
	token := types.MakeToken(1, 3)
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("data")}, Client: 500})
	oreq := h.expectOrderReq(t, token)
	h.grant(oreq, types.MakeSN(1, 1))
	h.waitClient(t, func(m transport.Message) bool { _, ok := m.(proto.AppendAck); return ok })

	h.cliEP.Send(1, proto.ReadReq{ID: 1, Color: 0, SN: types.MakeSN(1, 1), Client: 500})
	m := h.waitClient(t, func(m transport.Message) bool {
		rr, ok := m.(proto.ReadResp)
		return ok && rr.ID == 1
	})
	rr := m.(proto.ReadResp)
	if !rr.Found || !bytes.Equal(rr.Data, []byte("data")) {
		t.Fatalf("read resp = %+v", rr)
	}
	// A read below the frontier for a missing SN is an immediate ⊥... but
	// SN 1 is the frontier; ask for a hole-free below: SN 1 exists, so ask
	// for a committed-range hole by reading SN over the frontier and
	// letting the hold expire.
	start := time.Now()
	h.cliEP.Send(1, proto.ReadReq{ID: 2, Color: 0, SN: types.MakeSN(1, 50), Client: 500})
	m = h.waitClient(t, func(m transport.Message) bool {
		rr, ok := m.(proto.ReadResp)
		return ok && rr.ID == 2
	})
	if m.(proto.ReadResp).Found {
		t.Fatal("future SN read should be ⊥")
	}
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("future read answered in %v — the hold (§6.3) did not apply", el)
	}
}

func TestHeldReadReleasedByCommit(t *testing.T) {
	h := newHarness(t, 1)
	// Read SN 1 before anything is committed: the request must be held
	// and answered as soon as the commit lands.
	h.cliEP.Send(1, proto.ReadReq{ID: 9, Color: 0, SN: types.MakeSN(1, 1), Client: 500})
	time.Sleep(time.Millisecond)
	token := types.MakeToken(1, 4)
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("x")}, Client: 500})
	oreq := h.expectOrderReq(t, token)
	h.grant(oreq, types.MakeSN(1, 1))
	m := h.waitClient(t, func(m transport.Message) bool {
		rr, ok := m.(proto.ReadResp)
		return ok && rr.ID == 9
	})
	if rr := m.(proto.ReadResp); !rr.Found || string(rr.Data) != "x" {
		t.Fatalf("held read resp = %+v", rr)
	}
}

func TestOrderReqRetriedAcrossSilence(t *testing.T) {
	h := newHarness(t, 1)
	token := types.MakeToken(1, 5)
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("r")}, Client: 500})
	first := h.expectOrderReq(t, token)
	// Do not respond: the replica must re-issue (sequencer failover path).
	second := h.expectOrderReq(t, token)
	if first.Token != second.Token {
		t.Fatal("retry changed token")
	}
	if h.replicas[0].Stats().OReqRetries == 0 {
		t.Fatal("retry not counted")
	}
	h.grant(second, types.MakeSN(1, 1))
	h.waitClient(t, func(m transport.Message) bool { _, ok := m.(proto.AppendAck); return ok })
}

func TestSubscribeReturnsLocalView(t *testing.T) {
	h := newHarness(t, 1)
	for i := uint32(1); i <= 3; i++ {
		token := types.MakeToken(2, i)
		h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{{byte(i)}}, Client: 500})
		h.grant(h.expectOrderReq(t, token), types.MakeSN(1, i))
		h.waitClient(t, func(m transport.Message) bool {
			a, ok := m.(proto.AppendAck)
			return ok && a.Token == token
		})
	}
	h.cliEP.Send(1, proto.SubscribeReq{ID: 1, Color: 0, From: types.MakeSN(1, 1), Client: 500})
	m := h.waitClient(t, func(m transport.Message) bool {
		_, ok := m.(proto.SubscribeResp)
		return ok
	})
	sub := m.(proto.SubscribeResp)
	if len(sub.Records) != 2 { // From is exclusive
		t.Fatalf("subscribe returned %d records", len(sub.Records))
	}
	if sub.Records[0].SN != types.MakeSN(1, 2) {
		t.Fatalf("first record = %+v", sub.Records[0])
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeOperational: "operational",
		ModeSyncing:     "syncing",
		ModeCrashed:     "crashed",
		ModeStopped:     "stopped",
	} {
		if m.String() != want {
			t.Fatalf("mode %d = %q", m, m.String())
		}
	}
}

func TestStagedEncodingRoundTripProperty(t *testing.T) {
	f := func(target uint32, fid uint32, records [][]byte) bool {
		if len(records) == 0 {
			records = [][]byte{{}}
		}
		enc := EncodeStaged(types.ColorID(target), fid, records)
		gotTarget, gotFID, gotRecs, err := DecodeStaged(enc)
		if err != nil || gotTarget != types.ColorID(target) || gotFID != fid || len(gotRecs) != len(records) {
			return false
		}
		for i := range records {
			if !bytes.Equal(gotRecs[i], records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStagedRejectsGarbage(t *testing.T) {
	if _, _, _, err := DecodeStaged([]byte("not staged")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, _, err := DecodeStaged(nil); err == nil {
		t.Fatal("nil accepted")
	}
	// Truncated set.
	enc := EncodeStaged(1, 2, [][]byte{[]byte("abc")})
	if _, _, _, err := DecodeStaged(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated staged set accepted")
	}
}

func TestReplayTokenDeterministicAndDistinct(t *testing.T) {
	a := ReplayToken(types.MakeToken(1, 1))
	b := ReplayToken(types.MakeToken(1, 1))
	c := ReplayToken(types.MakeToken(1, 2))
	if a != b {
		t.Fatal("replay token not deterministic")
	}
	if a == c {
		t.Fatal("distinct staged tokens mapped to same replay token")
	}
	if a == types.MakeToken(1, 1) {
		t.Fatal("replay token equals staged token")
	}
}
