package replica

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// TestDupTokenPersistedUncommittedAcked covers the duplicate-token ack
// path: a token already persisted on the replica (e.g. re-ingested by
// recovery, or a batch whose first OrderResp was lost) but not yet
// committed. The retrying client's AppendReq must register it in
// pending[token].clients so the eventual commit acks it — the batch is
// NOT re-persisted.
func TestDupTokenPersistedUncommittedAcked(t *testing.T) {
	h := newHarness(t, 1)
	r := h.replicas[0]
	token := types.MakeToken(7, 1)

	// Inject the persisted-uncommitted state directly into storage.
	if err := r.Store().PutBatch(0, token, [][]byte{[]byte("orphan")}); err != nil {
		t.Fatal(err)
	}

	// The client retries the append.
	h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{[]byte("orphan")}, Client: 500})

	// The replica re-drives the order request instead of re-persisting...
	oreq := h.expectOrderReq(t, token)
	if r.Stats().AppendDrops != 0 {
		t.Fatalf("dup append counted as drop")
	}
	// ...and the commit acks the retrying client.
	h.grant(oreq, types.MakeSN(1, 1))
	m := h.waitClient(t, func(m transport.Message) bool {
		ack, ok := m.(proto.AppendAck)
		return ok && ack.Token == token
	})
	if ack := m.(proto.AppendAck); ack.SN != types.MakeSN(1, 1) {
		t.Fatalf("ack SN = %v", ack.SN)
	}
}

// TestDupTokenCommitRaceStillAcked races a direct storage commit (the
// sync path runs on the serialized loop, concurrent with write-lane
// appends) against the retrying client's AppendReq. Whatever the
// interleaving, the client must receive an AppendAck: either the dup
// check sees the committed SN, the post-registration re-check catches a
// commit that landed in between (the fixed window — previously the entry
// was stranded until the retry timer), or the pending entry survives and
// the sequencer's cached grant acks it.
func TestDupTokenCommitRaceStillAcked(t *testing.T) {
	h := newHarness(t, 1)
	r := h.replicas[0]
	// Answer every order request like a real sequencer would answer a dup
	// token: re-grant the cached assignment.
	var grantMu sync.Mutex
	grants := make(map[types.Token]types.SN)
	go func() {
		for req := range h.seqCh {
			grantMu.Lock()
			sn := grants[req.Token]
			grantMu.Unlock()
			h.grant(req, sn)
		}
	}()

	for i := 1; i <= 60; i++ {
		token := types.MakeToken(8, uint32(i))
		snI := types.MakeSN(1, uint32(i))
		grantMu.Lock()
		grants[token] = snI
		grantMu.Unlock()
		rec := []byte(fmt.Sprintf("r%03d", i))
		if err := r.Store().PutBatch(0, token, [][]byte{rec}); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			r.Store().Commit(token, snI)
			close(done)
		}()
		h.cliEP.Send(1, proto.AppendReq{Color: 0, Token: token, Records: [][]byte{rec}, Client: 500})
		m := h.waitClient(t, func(m transport.Message) bool {
			ack, ok := m.(proto.AppendAck)
			return ok && ack.Token == token
		})
		if ack := m.(proto.AppendAck); ack.SN != snI {
			t.Fatalf("iter %d: ack SN = %v, want %v", i, ack.SN, snI)
		}
		<-done
	}
}

// TestWriteLanePreservesPerColorFIFO sends interleaved appends and
// commits for many colors through a replica with a small write-lane pool
// and verifies every append commits with its own SN — same-color
// messages must not be reordered (an OrderResp overtaking its AppendReq
// would be buffered as "early" and still commit, so the stronger signal
// is that ALL tokens commit and no replica state wedges).
func TestWriteLanePreservesPerColorFIFO(t *testing.T) {
	h := newHarness(t, 1)
	r := h.replicas[0]
	if r.cfg.WriteWorkers <= 0 {
		t.Fatal("harness replica has no write lane")
	}
	const colors = 8
	const perColor = 40
	next := make(map[types.ColorID]uint32)
	for i := 1; i <= perColor; i++ {
		for c := 1; c <= colors; c++ {
			color := types.ColorID(c)
			token := types.MakeToken(uint32(100+c), uint32(i))
			h.cliEP.Send(1, proto.AppendReq{Color: color, Token: token, Records: [][]byte{[]byte("x")}, Client: 500})
			next[color]++
			// Grant immediately: the OrderResp chases the AppendReq onto
			// the same color worker.
			h.seqEP.Send(1, proto.OrderResp{Token: token, LastSN: types.MakeSN(1, next[color]), NRecords: 1, Color: color})
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r.Stats().Commits >= colors*perColor {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commits = %d, want %d", r.Stats().Commits, colors*perColor)
		}
		time.Sleep(time.Millisecond)
	}
	for c := 1; c <= colors; c++ {
		color := types.ColorID(c)
		if max := r.Store().MaxSN(color); max != types.MakeSN(1, perColor) {
			t.Fatalf("color %d maxSN = %v", c, max)
		}
	}
}
