package replica

import (
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/storage"
	"flexlog/internal/types"
)

// This file implements the replica side of online reconfiguration
// (DESIGN.md §15): join catch-up for replicas added to a live shard, the
// draining mode for replicas being removed, and the control messages the
// control plane drives both with.
//
// Joining is deliberately different from the §6.3 sync-phase: a sync-phase
// pauses the whole shard, which is exactly what adding capacity must not
// do. A joining replica instead lives OUTSIDE the topology — clients never
// address it — and pulls committed history from a donor replica in bounded
// rounds (JoinFetch/JoinEntries) while the shard keeps serving. The donor
// side is stateless, like onSyncFetch: every round is answered from
// current storage, so donor crashes or message loss cost one retry, never
// a wedged transfer. Only when the catch-up lag reaches zero does the
// control plane add the node to the shard and call Promote, which runs one
// ordinary sync-phase to converge the final in-flight tail — the shard
// pause is then proportional to the tail, not to the log.
//
// Draining inverts the order: the control plane first removes the node
// from the topology (so the membership clients re-resolve no longer names
// it), then switches it to ModeDraining. A draining replica answers new
// appends with Reject(reconfiguring) — a typed, retryable signal — but
// keeps committing its pending orders, serving reads, and participating in
// trims until the control plane observes PendingOrders()==0 and stops it.
// Removal never loses acked data: an acked append was committed on every
// member at ack time, so the surviving members hold it.

// defaultJoinBudget bounds the records per color one catch-up round may
// carry when Config.JoinBudget is unset.
const defaultJoinBudget = 2048

// drainRetryAfter is the retry hint attached to Reject(reconfiguring):
// long enough for the client's next resolve to see the new membership.
const drainRetryAfter = 2 * time.Millisecond

// joinLagUnknown is the lag reported before the first catch-up round has
// measured the donor's frontier.
const joinLagUnknown = ^uint64(0)

// joinState tracks one catch-up transfer this replica is driving.
type joinState struct {
	id        uint64
	donor     types.NodeID
	started   time.Time
	lastDrive time.Time
}

// StartJoin begins pulling committed history from the donor. The replica
// must have been created outside the topology (clients must not address
// it); the control plane promotes it once JoinLag reaches zero.
func (r *Replica) StartJoin(donor types.NodeID) {
	r.mu.Lock()
	r.syncSeq++
	id := uint64(r.cfg.ID)<<32 | r.syncSeq
	r.join = &joinState{id: id, donor: donor, started: time.Now()}
	r.mu.Unlock()
	r.joinLag.Store(joinLagUnknown)
	r.mode.store(ModeJoining)
	r.sendJoinFetch()
}

// JoinLag estimates how many records this replica is behind its donor:
// the per-color gap between the donor's last reported frontier and the
// local one, summed. MaxUint64 until the first round answers.
func (r *Replica) JoinLag() uint64 { return r.joinLag.Load() }

// Promote ends the catch-up and converges the final in-flight tail with
// the shard through an ordinary sync-phase. The control plane must have
// added this node to the shard's membership first, so the sync-phase
// participants include the existing replicas.
func (r *Replica) Promote() {
	r.mu.Lock()
	r.join = nil
	r.mu.Unlock()
	r.joinLag.Store(0)
	r.startSyncPhase()
}

// Drain switches the replica to draining: new appends get a typed
// retryable Reject while pending orders keep committing. The control
// plane must have removed this node from the topology first and calls
// Stop once PendingOrders drains to zero.
func (r *Replica) Drain() {
	r.mode.store(ModeDraining)
}

// PendingOrders reports the appends persisted here that still await their
// sequence number — the drain-completion signal.
func (r *Replica) PendingOrders() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// sendJoinFetch issues the next catch-up round to the donor.
func (r *Replica) sendJoinFetch() {
	r.mu.Lock()
	j := r.join
	if j == nil {
		r.mu.Unlock()
		return
	}
	j.lastDrive = time.Now()
	id, donor := j.id, j.donor
	have := r.maxSNsLocked()
	r.mu.Unlock()
	budget := r.cfg.JoinBudget
	if budget <= 0 {
		budget = defaultJoinBudget
	}
	r.ep.Send(donor, proto.JoinFetch{ID: id, Have: have, Budget: uint32(budget), From: r.cfg.ID})
}

// retryJoin re-drives a catch-up round that got no answer (lost message or
// donor hiccup) and keeps polling the donor's frontier once caught up, so
// records committed under live traffic keep flowing to the joiner.
func (r *Replica) retryJoin(now time.Time) {
	retry := r.cfg.RetryTimeout
	if retry <= 0 {
		retry = 30 * time.Millisecond
	}
	r.mu.Lock()
	j := r.join
	stale := j != nil && now.Sub(j.lastDrive) >= retry
	r.mu.Unlock()
	if stale {
		r.sendJoinFetch()
	}
}

// onJoinFetch is the donor side: serve committed records above the
// joiner's frontier, budget-capped per color, plus the current frontier so
// the joiner can measure its lag. Stateless — every round is answered from
// current storage.
func (r *Replica) onJoinFetch(from types.NodeID, m proto.JoinFetch) {
	budget := int(m.Budget)
	if budget <= 0 {
		budget = defaultJoinBudget
	}
	out := make(map[types.ColorID][]proto.WireRecord)
	frontier := make(map[types.ColorID]types.SN)
	more := false
	for _, c := range r.topo.Colors() {
		if sn := r.st.MaxSN(c); sn.Valid() {
			frontier[c] = sn
		}
		recs, err := r.st.ScanFrom(c, m.Have[c])
		if err != nil || len(recs) == 0 {
			continue
		}
		if len(recs) > budget {
			recs, more = recs[:budget], true
		}
		wire := make([]proto.WireRecord, len(recs))
		for i, rec := range recs {
			wire[i] = proto.WireRecord{Token: rec.Token, SN: rec.SN, Data: rec.Data}
		}
		out[c] = wire
	}
	r.ep.Send(from, proto.JoinEntries{ID: m.ID, Records: out, Frontier: frontier, More: more, From: r.cfg.ID})
}

// onJoinEntries ingests one catch-up round: persist + commit each record
// at its authoritative SN (idempotent for records already present), skip
// anything at or below the local trim frontier, then refresh the lag
// estimate. More=true chains the next round immediately; otherwise the
// timer keeps polling so the joiner tracks live traffic.
func (r *Replica) onJoinEntries(m proto.JoinEntries) {
	r.mu.Lock()
	j := r.join
	if j == nil || j.id != m.ID {
		r.mu.Unlock()
		return
	}
	j.lastDrive = time.Now()
	r.mu.Unlock()
	r.stats.joinRounds.Add(1)
	for color, recs := range m.Records {
		frontier := r.st.Trimmed(color)
		for _, rec := range recs {
			if rec.SN.Valid() && rec.SN <= frontier {
				continue
			}
			if !r.st.Has(rec.Token) {
				if err := r.st.Put(color, rec.Token, rec.Data); err != nil {
					continue
				}
			}
			if err := r.st.Commit(rec.Token, rec.SN); err != nil && err != storage.ErrUnknownToken {
				continue
			}
			r.maxSeen.bump(color, rec.SN)
			r.stats.joinRecords.Add(1)
		}
	}
	var lag uint64
	for c, sn := range m.Frontier {
		if mine := r.st.MaxSN(c); mine < sn {
			lag += uint64(sn - mine)
		}
	}
	r.joinLag.Store(lag)
	if m.More {
		r.sendJoinFetch()
	}
}

// rejectDraining answers an append that reached a draining replica with
// the typed retryable rejection; the client re-resolves membership and
// lands on the surviving replicas.
func (r *Replica) rejectDraining(from types.NodeID, color types.ColorID, token types.Token, client types.NodeID) {
	if client == 0 {
		client = from
	}
	r.stats.reconfigRejects.Add(1)
	r.ep.Send(client, proto.Reject{
		Token:            token,
		Color:            color,
		Code:             proto.RejectReconfiguring,
		RetryAfterMicros: uint64(drainRetryAfter / time.Microsecond),
	})
}

// onTopoUpdate adopts a broadcast topology snapshot if it is newer than
// the local layout (epoch fencing: stale snapshots are dropped).
func (r *Replica) onTopoUpdate(m proto.TopoUpdate) {
	if r.topo.ApplyWire(m) {
		r.stats.topoApplies.Add(1)
	}
}

// onCtrlReconfig executes one control-plane operation and answers with a
// CtrlAck carrying the replica's mode, lag, and topology version — the
// controller's polling surface.
func (r *Replica) onCtrlReconfig(from types.NodeID, m proto.CtrlReconfig) {
	ack := proto.CtrlAck{Seq: m.Seq, Op: m.Op, From: r.cfg.ID}
	switch m.Op {
	case proto.CtrlOpJoin:
		if m.Donor == 0 {
			ack.OK = false
		} else {
			r.StartJoin(m.Donor)
			ack.OK = true
		}
	case proto.CtrlOpPromote:
		r.Promote()
		ack.OK = true
	case proto.CtrlOpDrain:
		r.Drain()
		ack.OK = true
	case proto.CtrlOpStatus:
		ack.OK = true
	default:
		ack.OK = false
	}
	ack.Mode = uint8(r.mode.load())
	ack.Lag = r.ctrlLag()
	ack.Version = r.topo.Version()
	r.ep.Send(from, ack)
}

// ctrlLag is the progress figure a CtrlAck reports: catch-up lag while
// joining, un-flushed pending orders while draining, zero otherwise.
func (r *Replica) ctrlLag() uint64 {
	switch r.mode.load() {
	case ModeJoining:
		return r.joinLag.Load()
	case ModeDraining:
		return uint64(r.PendingOrders())
	}
	return 0
}

// CommittedRecords scans every committed record this replica holds, per
// color — the donor side of a shard merge. Records at or below the trim
// frontier were discarded on every member and are not included.
func (r *Replica) CommittedRecords() (map[types.ColorID][]proto.WireRecord, error) {
	out := make(map[types.ColorID][]proto.WireRecord)
	for _, c := range r.topo.Colors() {
		recs, err := r.st.ScanFrom(c, 0)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			continue
		}
		wire := make([]proto.WireRecord, len(recs))
		for i, rec := range recs {
			wire[i] = proto.WireRecord{Token: rec.Token, SN: rec.SN, Data: rec.Data}
		}
		out[c] = wire
	}
	return out, nil
}

// IngestCommitted installs already-ordered records at their authoritative
// SNs — the destination side of a shard merge. Identical to catch-up
// ingestion: idempotent for records already present, skips anything at or
// below the local trim frontier, and bumps the commit watermark so held
// reads wake.
func (r *Replica) IngestCommitted(color types.ColorID, recs []proto.WireRecord) {
	frontier := r.st.Trimmed(color)
	for _, rec := range recs {
		if rec.SN.Valid() && rec.SN <= frontier {
			continue
		}
		if !r.st.Has(rec.Token) {
			if err := r.st.Put(color, rec.Token, rec.Data); err != nil {
				continue
			}
		}
		if err := r.st.Commit(rec.Token, rec.SN); err != nil && err != storage.ErrUnknownToken {
			continue
		}
		r.maxSeen.bump(color, rec.SN)
	}
}

// orderReplicas returns the commit fan-out list for an order request: the
// shard's current membership, plus this replica when the topology no
// longer names it (draining). The removed replica still holds persisted
// records awaiting their SN and must hear the OrderResp to flush them.
func (r *Replica) orderReplicas(replicas []types.NodeID) []types.NodeID {
	for _, id := range replicas {
		if id == r.cfg.ID {
			return replicas
		}
	}
	out := make([]types.NodeID, 0, len(replicas)+1)
	out = append(out, replicas...)
	return append(out, r.cfg.ID)
}
