package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/proto"
	"flexlog/internal/storage"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// This file implements the replica's fast read lane (§6.1 reads, §6.2
// subscribes). Read-class messages are dispatched to a transport worker
// pool instead of the serialized mutation loop, so the structures they
// touch are engineered for concurrency:
//
//   - per-color commit watermarks are atomics (no r.mu on the read path);
//   - parked reads live in a lock-striped registry keyed by (color, SN),
//     so a commit wakes exactly the reads it can satisfy instead of
//     rescanning every held read;
//   - all replica counters are atomics (see counters).
//
// Linearizability is preserved because the delivery loop still dequeues
// in arrival order: a read is handed to the pool only after every earlier
// mutation has been processed, so reads can complete late, never early —
// and a late read of a committed SN is caught by the watermark re-check
// (or parked and woken by the commit).

// readClass classifies the messages the lane may serve concurrently.
func readClass(msg transport.Message) bool {
	switch msg.(type) {
	case proto.ReadReq, proto.SubscribeReq:
		return true
	}
	return false
}

// laneConfig builds the transport lane configuration for this replica.
// With tracing on, the lane reports queue wait into the read tracer's
// lane_wait stage histogram.
func (r *Replica) laneConfig() transport.LaneConfig {
	if r.cfg.ReadWorkers <= 0 {
		return transport.LaneConfig{}
	}
	cfg := transport.LaneConfig{Workers: r.cfg.ReadWorkers, Classify: readClass, QoS: r.laneQoS()}
	if r.readTr != nil {
		cfg.Observe = func(queueWait, _ time.Duration) {
			r.readTr.ObserveStage("lane_wait", queueWait)
		}
	}
	return cfg
}

// ---- Per-color atomic watermarks ----

// watermarks tracks the highest SN observed per color (commit or sync)
// with lock-free reads: the read lane consults it on every miss.
type watermarks struct {
	m sync.Map // types.ColorID -> *atomic.Uint64
}

func (w *watermarks) slot(c types.ColorID) *atomic.Uint64 {
	if v, ok := w.m.Load(c); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := w.m.LoadOrStore(c, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// get returns the watermark for the color (InvalidSN if never bumped).
func (w *watermarks) get(c types.ColorID) types.SN {
	if v, ok := w.m.Load(c); ok {
		return types.SN(v.(*atomic.Uint64).Load())
	}
	return types.InvalidSN
}

// bump raises the color's watermark to sn if it is higher.
func (w *watermarks) bump(c types.ColorID, sn types.SN) {
	s := w.slot(c)
	for {
		cur := s.Load()
		if uint64(sn) <= cur || s.CompareAndSwap(cur, uint64(sn)) {
			return
		}
	}
}

// reset forgets every watermark (recovery rebuilds them from storage).
func (w *watermarks) reset() {
	w.m.Range(func(k, _ any) bool {
		w.m.Delete(k)
		return true
	})
}

// ---- Striped held-read registry ----

// heldStripes is the number of independently locked registry stripes.
// Colors hash across stripes, so reads and commits of different colors
// never contend; within a stripe entries are keyed by color then SN.
const heldStripes = 16

type heldStripe struct {
	mu      sync.Mutex
	byColor map[types.ColorID]map[types.SN][]heldRead
}

// heldRegistry parks reads for not-yet-seen SNs (§6.3 Safety). Keying by
// (color, SN) lets a commit wake only the reads its new frontier
// satisfies — the old flat slice was rescanned O(held) on every commit.
type heldRegistry struct {
	stripes [heldStripes]heldStripe
	count   atomic.Int64
}

func (g *heldRegistry) stripe(c types.ColorID) *heldStripe {
	return &g.stripes[uint32(c)%heldStripes]
}

// add parks one read.
func (g *heldRegistry) add(c types.ColorID, sn types.SN, h heldRead) {
	s := g.stripe(c)
	s.mu.Lock()
	if s.byColor == nil {
		s.byColor = make(map[types.ColorID]map[types.SN][]heldRead)
	}
	bySN := s.byColor[c]
	if bySN == nil {
		bySN = make(map[types.SN][]heldRead)
		s.byColor[c] = bySN
	}
	bySN[sn] = append(bySN[sn], h)
	s.mu.Unlock()
	g.count.Add(1)
}

// wake removes and returns every read of the color parked at SN <= upTo —
// exactly the reads the frontier advance can satisfy (record or hole).
func (g *heldRegistry) wake(c types.ColorID, upTo types.SN) []heldRead {
	s := g.stripe(c)
	s.mu.Lock()
	bySN := s.byColor[c]
	if len(bySN) == 0 {
		s.mu.Unlock()
		return nil
	}
	var out []heldRead
	for sn, hs := range bySN {
		if sn <= upTo {
			out = append(out, hs...)
			delete(bySN, sn)
		}
	}
	s.mu.Unlock()
	g.count.Add(-int64(len(out)))
	return out
}

// expire removes and returns every read whose deadline has passed.
func (g *heldRegistry) expire(now time.Time) []heldRead {
	var out []heldRead
	for i := range g.stripes {
		s := &g.stripes[i]
		s.mu.Lock()
		for c, bySN := range s.byColor {
			for sn, hs := range bySN {
				keep := hs[:0]
				for _, h := range hs {
					if now.After(h.deadline) {
						out = append(out, h)
					} else {
						keep = append(keep, h)
					}
				}
				if len(keep) == 0 {
					delete(bySN, sn)
				} else {
					bySN[sn] = keep
				}
			}
			if len(bySN) == 0 {
				delete(s.byColor, c)
			}
		}
		s.mu.Unlock()
	}
	g.count.Add(-int64(len(out)))
	return out
}

// drain removes every parked read (crash: they are dropped, the client
// times out and retries — the pre-lane behavior).
func (g *heldRegistry) drain() {
	for i := range g.stripes {
		s := &g.stripes[i]
		s.mu.Lock()
		for c, bySN := range s.byColor {
			for _, hs := range bySN {
				g.count.Add(-int64(len(hs)))
			}
			delete(s.byColor, c)
		}
		s.mu.Unlock()
	}
}

// size returns the number of parked reads.
func (g *heldRegistry) size() int { return int(g.count.Load()) }

// ---- Read protocol (§6.1) with read-hold (§6.3 Safety) ----

// frontier is the highest SN this replica knows to be assigned for the
// color: the committed watermark or storage's max committed SN.
func (r *Replica) frontier(color types.ColorID) types.SN {
	sn := r.maxSeen.get(color)
	if st := r.st.MaxSN(color); st > sn {
		sn = st
	}
	return sn
}

// onRead may run concurrently on the read lane: it touches only storage
// (internally synchronized), the atomic watermarks, and the held registry.
func (r *Replica) onRead(from types.NodeID, m proto.ReadReq) {
	r.stats.reads.Add(1)
	r.tenantCounters(m.Tenant).reads.Add(1)
	if r.readTr.Enabled() {
		start := time.Now()
		defer func() {
			d := time.Since(start)
			r.readTr.Observe(fmt.Sprintf("color=%d sn=%d", m.Color, m.SN), d,
				[]obs.Span{{Name: "serve", D: d}})
		}()
	}
	data, err := r.st.Get(m.Color, m.SN)
	if errors.Is(err, storage.ErrEvicted) {
		// The record's segment lives on the cold tier and the read failed
		// (eviction/GC race or a crashed tier). Get retries internally, so
		// one more attempt here, then report the transient status.
		if data2, err2 := r.st.Get(m.Color, m.SN); err2 == nil {
			data, err = data2, nil
		} else {
			r.stats.readMisses.Add(1)
			r.ep.Send(from, proto.ReadResp{ID: m.ID, SN: m.SN, Found: false, Status: proto.ReadStatusEvicted})
			return
		}
	}
	if err == nil {
		r.ep.Send(from, proto.ReadResp{ID: m.ID, SN: m.SN, Data: data, Found: true})
		return
	}
	if errors.Is(err, storage.ErrTrimmed) {
		r.ep.Send(from, proto.ReadResp{ID: m.ID, SN: m.SN, Found: false, Status: trimStatus(err)})
		return
	}
	// Not found. If the SN is above everything this replica has seen, the
	// append may still be in flight: hold the request (§6.3, problem 2).
	if m.SN > r.frontier(m.Color) && r.cfg.ReadHoldTimeout > 0 {
		r.stats.heldReads.Add(1)
		r.held.add(m.Color, m.SN, heldRead{req: m, from: from, deadline: time.Now().Add(r.cfg.ReadHoldTimeout)})
		// Close the park/commit race: a commit that advanced the frontier
		// between the failed Get and the registration saw an empty
		// registry, so it could not wake this read.
		if f := r.frontier(m.Color); f >= m.SN {
			r.wakeHeld(m.Color, f)
		}
		return
	}
	// The SN is at or below the frontier. On the serialized loop that
	// proved a hole; on the concurrent lane a commit may have landed
	// between the miss and the frontier check, so re-read before ⊥.
	if data, err := r.st.Get(m.Color, m.SN); err == nil {
		r.ep.Send(from, proto.ReadResp{ID: m.ID, SN: m.SN, Data: data, Found: true})
		return
	}
	r.stats.readMisses.Add(1)
	r.ep.Send(from, proto.ReadResp{ID: m.ID, SN: m.SN, Found: false})
}

// trimStatus distinguishes a checkpoint-truncated trim miss from a plain
// one (the client surfaces the former as a terminal error).
func trimStatus(err error) uint8 {
	if errors.Is(err, storage.ErrCheckpointTruncated) {
		return proto.ReadStatusCkptTruncated
	}
	return proto.ReadStatusTrimmed
}

// wakeHeld releases the color's parked reads the frontier now satisfies.
func (r *Replica) wakeHeld(color types.ColorID, frontier types.SN) {
	if r.held.size() == 0 {
		return
	}
	woken := r.held.wake(color, frontier)
	if len(woken) == 0 {
		return
	}
	r.stats.heldWakeups.Add(uint64(len(woken)))
	for _, h := range woken {
		r.serveHeld(h)
	}
}

// serveHeld answers one woken read: the record, ⊥ for trimmed/hole, or —
// if the frontier receded from under us (it cannot, but defensively) —
// back into the registry.
func (r *Replica) serveHeld(h heldRead) {
	data, err := r.st.Get(h.req.Color, h.req.SN)
	switch {
	case err == nil:
		r.ep.Send(h.from, proto.ReadResp{ID: h.req.ID, SN: h.req.SN, Data: data, Found: true})
	case errors.Is(err, storage.ErrTrimmed):
		r.ep.Send(h.from, proto.ReadResp{ID: h.req.ID, SN: h.req.SN, Found: false, Status: trimStatus(err)})
	case errors.Is(err, storage.ErrEvicted):
		r.ep.Send(h.from, proto.ReadResp{ID: h.req.ID, SN: h.req.SN, Found: false, Status: proto.ReadStatusEvicted})
	default:
		if r.frontier(h.req.Color) >= h.req.SN {
			// A higher SN has appeared: the requested SN is a hole. ⊥.
			r.ep.Send(h.from, proto.ReadResp{ID: h.req.ID, SN: h.req.SN, Found: false})
		} else {
			r.held.add(h.req.Color, h.req.SN, h)
		}
	}
}

// expireHeldReads times out parked reads (the request "times out; that does
// not violate linearizability", §6.3).
func (r *Replica) expireHeldReads(now time.Time) {
	if r.held.size() == 0 {
		return
	}
	expired := r.held.expire(now)
	if len(expired) == 0 {
		return
	}
	r.stats.readMisses.Add(uint64(len(expired)))
	for _, h := range expired {
		r.ep.Send(h.from, proto.ReadResp{ID: h.req.ID, SN: h.req.SN, Found: false})
	}
}

// ---- Subscribe (§6.2) ----

// onSubscribe also runs on the read lane; storage scans are internally
// synchronized and release the store lock across device reads.
func (r *Replica) onSubscribe(from types.NodeID, m proto.SubscribeReq) {
	r.stats.subscribes.Add(1)
	recs, err := r.st.ScanFrom(m.Color, m.From)
	if err != nil {
		// Never leave the subscriber hanging on a failed scan: an empty
		// view is indistinguishable from a lagging replica, so the client
		// merges the other shards and retries — instead of timing out.
		r.ep.Send(from, proto.SubscribeResp{ID: m.ID, Color: m.Color})
		return
	}
	out := make([]proto.WireRecord, len(recs))
	for i, rec := range recs {
		out[i] = proto.WireRecord{Token: rec.Token, SN: rec.SN, Data: rec.Data}
	}
	r.ep.Send(from, proto.SubscribeResp{ID: m.ID, Color: m.Color, Records: out})
}
