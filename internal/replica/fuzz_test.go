package replica

import (
	"testing"

	"flexlog/internal/types"
)

// FuzzDecodeStaged feeds arbitrary bytes to the multi-append staging
// decoder: reject or parse, never panic.
func FuzzDecodeStaged(f *testing.F) {
	f.Add(EncodeStaged(3, 7, [][]byte{[]byte("x"), {}}))
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		target, fid, records, err := DecodeStaged(raw)
		if err != nil {
			return
		}
		_ = target
		_ = fid
		for _, r := range records {
			_ = r
		}
		_ = types.ColorID(0)
	})
}
