package replica

import (
	"testing"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// commitRecords drives n records through the harness shard.
func commitRecords(t *testing.T, h *harness, n int) {
	t.Helper()
	sh, _ := h.topo.Shard(1)
	for i := 1; i <= n; i++ {
		token := types.MakeToken(7, uint32(i))
		h.cliEP.Broadcast(sh.Replicas, proto.AppendReq{
			Color: 0, Token: token, Records: [][]byte{payloadOf(i)}, Client: 500,
		})
		req := h.expectOrderReq(t, token)
		h.grant(req, types.MakeSN(1, uint32(i)))
		// Wait for every replica's ack so the commit is fully applied.
		for acks := 0; acks < len(sh.Replicas); {
			m := h.waitClient(t, func(m transport.Message) bool {
				a, ok := m.(proto.AppendAck)
				return ok && a.Token == token
			})
			_ = m
			acks++
		}
	}
}

func payloadOf(i int) []byte { return []byte{byte(i), byte(i >> 8)} }

// TestTrimBarrierAcrossShard verifies the §6.2 trim rounds at the protocol
// level: all replicas trim, exchange peer acks, and each reports [head,
// tail] to the caller only after the barrier.
func TestTrimBarrierAcrossShard(t *testing.T) {
	h := newHarness(t, 3)
	commitRecords(t, h, 6)
	sh, _ := h.topo.Shard(1)

	h.cliEP.Broadcast(sh.Replicas, proto.TrimReq{ID: 77, Color: 0, SN: types.MakeSN(1, 4), Client: 500})
	// All three replicas eventually answer with the surviving bounds.
	acks := 0
	for acks < 3 {
		m := h.waitClient(t, func(m transport.Message) bool {
			ta, ok := m.(proto.TrimAck)
			return ok && ta.ID == 77
		})
		ta := m.(proto.TrimAck)
		if ta.Head != types.MakeSN(1, 5) || ta.Tail != types.MakeSN(1, 6) {
			t.Fatalf("trim ack bounds = %v..%v", ta.Head, ta.Tail)
		}
		acks++
	}
	// The records below the cut are gone on every replica.
	for _, r := range h.replicas {
		if _, err := r.Store().Get(0, types.MakeSN(1, 3)); err == nil {
			t.Fatalf("replica %v retains trimmed record", r.ID())
		}
		if _, err := r.Store().Get(0, types.MakeSN(1, 6)); err != nil {
			t.Fatalf("replica %v lost surviving record: %v", r.ID(), err)
		}
	}
}

// TestTrimBarrierWaitsForAllPeers: with one replica unreachable, no
// TrimAck may be issued (§6.2's all-to-all ack requirement blocks).
func TestTrimBarrierWaitsForAllPeers(t *testing.T) {
	h := newHarness(t, 3)
	commitRecords(t, h, 2)
	sh, _ := h.topo.Shard(1)
	// Cut replica 3 off before the trim.
	h.net.Isolate(sh.Replicas[2])
	h.cliEP.Broadcast(sh.Replicas[:2], proto.TrimReq{ID: 78, Color: 0, SN: types.MakeSN(1, 1), Client: 500})
	select {
	case <-func() chan struct{} {
		ch := make(chan struct{}, 1)
		go func() {
			h.waitClientQuiet(func(m transport.Message) bool {
				ta, ok := m.(proto.TrimAck)
				return ok && ta.ID == 78
			}, 80*time.Millisecond)
			ch <- struct{}{}
		}()
		return ch
	}():
		// waitClientQuiet returns after its own timeout; the assertion is
		// in received below.
	}
	if h.sawTrimAck(78) {
		t.Fatal("TrimAck issued without the full peer barrier")
	}
	// Healing the partition lets the barrier finish: the client retries
	// the trim to reach the missing replica.
	h.net.Rejoin(sh.Replicas[2])
	h.cliEP.Broadcast(sh.Replicas, proto.TrimReq{ID: 78, Color: 0, SN: types.MakeSN(1, 1), Client: 500})
	h.waitClient(t, func(m transport.Message) bool {
		ta, ok := m.(proto.TrimAck)
		return ok && ta.ID == 78
	})
}

// waitClientQuiet drains client messages until match or timeout, without
// failing the test.
func (h *harness) waitClientQuiet(match func(transport.Message) bool, timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		select {
		case m := <-h.cliCh:
			h.stash = append(h.stash, m)
			if match(m) {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// sawTrimAck checks the stash for a TrimAck with the given id.
func (h *harness) sawTrimAck(id uint64) bool {
	for _, m := range h.stash {
		if ta, ok := m.(proto.TrimAck); ok && ta.ID == id {
			return true
		}
	}
	return false
}
