package replica

import (
	"encoding/binary"
	"fmt"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/types"
)

// This file implements the broker-replica half of the atomic multi-color
// append protocol (Alg. 2, §6.4).
//
// The client first appends each record set to the special (broker) color,
// with the target color and the caller's FID persisted alongside the data
// (EncodeStaged/DecodeStaged). After all staged appends ack, the client
// broadcasts MultiAppendEnd; every broker replica then replays each staged
// set into its target color via the normal append protocol and acks the
// client when all sets are fully appended.
//
// All broker replicas derive the same replay token from the staged token
// and pick the same target shard, so the replicas of the target shard
// deduplicate the concurrent replays and the appended records are identical
// no matter how many brokers replay them — this is what makes the protocol
// all-or-nothing under broker crashes (§7, multi-color proof).

// stagedHeader is the metadata persisted with each staged record set.
const stagedMagic = 0x464C4D41 // "FLMA"

// EncodeStaged frames a multi-append record set for staging in the broker
// color: [magic][target color][fid][count][len_i][data_i]...
func EncodeStaged(target types.ColorID, fid uint32, records [][]byte) []byte {
	total := 16
	for _, rec := range records {
		total += 4 + len(rec)
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:4], stagedMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(target))
	binary.LittleEndian.PutUint32(buf[8:12], fid)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(records)))
	off := 16
	for _, rec := range records {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(rec)))
		off += 4
		copy(buf[off:], rec)
		off += len(rec)
	}
	return buf
}

// DecodeStaged parses a staged record set.
func DecodeStaged(data []byte) (target types.ColorID, fid uint32, records [][]byte, err error) {
	if len(data) < 16 || binary.LittleEndian.Uint32(data[0:4]) != stagedMagic {
		return 0, 0, nil, fmt.Errorf("replica: not a staged multi-append record")
	}
	target = types.ColorID(binary.LittleEndian.Uint32(data[4:8]))
	fid = binary.LittleEndian.Uint32(data[8:12])
	count := binary.LittleEndian.Uint32(data[12:16])
	off := 16
	for i := uint32(0); i < count; i++ {
		if off+4 > len(data) {
			return 0, 0, nil, fmt.Errorf("replica: truncated staged set")
		}
		l := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if off+l > len(data) {
			return 0, 0, nil, fmt.Errorf("replica: truncated staged record")
		}
		records = append(records, data[off:off+l])
		off += l
	}
	return target, fid, records, nil
}

// ReplayToken derives the token used when a staged set is replayed into its
// target color. It is a deterministic function of the staged token so every
// broker replica produces the same token and target-shard replicas dedupe
// the concurrent replays.
func ReplayToken(staged types.Token) types.Token {
	// SplitMix64-style mix; deterministic and collision-resistant against
	// the (fid<<32|ctr) token space of live clients.
	x := uint64(staged) + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return types.Token(x ^ (x >> 31))
}

// replayWait tracks one replayed set awaiting AppendAcks from the target
// shard's replicas.
type replayWait struct {
	needed map[types.NodeID]bool
	done   chan struct{}
	closed bool
}

// onMultiAppendEnd replays each staged set into its target color and acks
// the client when all sets are appended (Alg. 2 replica role).
func (r *Replica) onMultiAppendEnd(from types.NodeID, m proto.MultiAppendEnd) {
	if r.mode.load() != ModeOperational {
		return
	}
	client := m.Client
	if client == 0 {
		client = from
	}
	// Replaying involves blocking waits on other shards: run off the
	// delivery goroutine.
	go r.replayStaged(client, m)
}

func (r *Replica) replayStaged(client types.NodeID, m proto.MultiAppendEnd) {
	for _, token := range m.Tokens {
		if !r.replayOne(token) {
			// Could not complete this set (e.g. target shard unreachable):
			// do not ack; the client retries MultiAppendEnd and the
			// replays are idempotent.
			return
		}
	}
	r.stats.replays.Add(uint64(len(m.Tokens)))
	r.ep.Send(client, proto.MultiAppendAck{ID: m.ID})
}

// replayOne replays a single staged set. Returns true once every replica of
// the target shard acked the append.
func (r *Replica) replayOne(staged types.Token) bool {
	brokerColor, sn, ok := r.st.TokenInfo(staged)
	if !ok || !sn.Valid() {
		// We never persisted (or committed) this staged set: we cannot
		// replay it. Another broker replica that has it will.
		return false
	}
	// The staged payload is the single record of the staging batch.
	data, err := r.st.Get(brokerColor, sn)
	if err != nil {
		return false
	}
	target, _, records, err := DecodeStaged(data)
	if err != nil {
		return false
	}
	// Deterministic target shard (all brokers agree).
	shards := r.topo.ShardsInRegion(target)
	if len(shards) == 0 {
		return false
	}
	sh := shards[int(uint64(staged)%uint64(len(shards)))]
	token := ReplayToken(staged)

	wait := &replayWait{needed: make(map[types.NodeID]bool, len(sh.Replicas)), done: make(chan struct{})}
	for _, id := range sh.Replicas {
		wait.needed[id] = true
	}
	r.mu.Lock()
	if existing, dup := r.replays[token]; dup {
		r.mu.Unlock()
		<-existing.done
		return true
	}
	r.replays[token] = wait
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.replays, token)
		r.mu.Unlock()
	}()

	req := proto.AppendReq{Color: target, Token: token, Records: records, Client: r.cfg.ID}
	deadline := time.Now().Add(50 * r.cfg.RetryTimeout)
	for {
		r.ep.Broadcast(sh.Replicas, req)
		select {
		case <-wait.done:
			return true
		case <-r.stopCh:
			return false
		case <-time.After(r.cfg.RetryTimeout):
			if time.Now().After(deadline) {
				return false
			}
		}
	}
}

// onAppendAck collects acknowledgements for replays this replica initiated
// (Alg. 2 line 16: "wait(token, sn) from all replicas in shard").
func (r *Replica) onAppendAck(from types.NodeID, m proto.AppendAck) {
	r.mu.Lock()
	wait := r.replays[m.Token]
	if wait == nil {
		r.mu.Unlock()
		return
	}
	delete(wait.needed, from)
	if len(wait.needed) == 0 && !wait.closed {
		wait.closed = true
		close(wait.done)
	}
	r.mu.Unlock()
}
