// Package replica implements FlexLog's data-layer node (§5.2, §6): a
// storage server that persists append batches to the tiered PM stack,
// requests sequence numbers from the ordering layer, commits and serves
// records with linearizable local reads, participates in the trim barrier,
// acts as a broker for multi-color appends (Alg. 2), and recovers through
// the sync-phase protocol (§6.3).
//
// Concurrency model (three lanes): read-class traffic (ReadReq,
// SubscribeReq) is dispatched to a transport worker pool
// (Config.ReadWorkers) and runs concurrently; the read path therefore only
// touches storage (internally synchronized), the per-color atomic
// watermarks, the lock-striped held-read registry, and atomic counters —
// never long-held r.mu. See readpath.go for why this preserves
// linearizability. Write-class traffic (AppendReq, AppendBatchReq,
// OrderResp, OrderRespBatch) is dispatched to a keyed write lane
// (Config.WriteWorkers) that pins each color to one worker: same-color
// messages stay FIFO while different colors persist and commit in
// parallel — see writepath.go. Everything else — trims, sync, multi-append
// — stays on the serialized delivery loop, with shared state guarded by
// r.mu. Timers and multi-append replays run on background goroutines.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/proto"
	"flexlog/internal/qos"
	"flexlog/internal/storage"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Mode is the replica's operating mode.
type Mode int

// Replica modes.
const (
	ModeOperational Mode = iota
	ModeSyncing
	ModeCrashed
	ModeStopped
	// ModeJoining: spawned outside the topology, pulling committed history
	// from a donor replica (DESIGN.md §15). Appends never reach it (clients
	// cannot address it); Promote moves it to ModeSyncing.
	ModeJoining
	// ModeDraining: removed from the topology, flushing pending orders
	// before Stop. New appends get Reject(reconfiguring); commits, reads,
	// and trims still flow.
	ModeDraining
)

func (m Mode) String() string {
	switch m {
	case ModeOperational:
		return "operational"
	case ModeSyncing:
		return "syncing"
	case ModeCrashed:
		return "crashed"
	case ModeJoining:
		return "joining"
	case ModeDraining:
		return "draining"
	default:
		return "stopped"
	}
}

// Config parameterizes one replica.
type Config struct {
	ID    types.NodeID
	Shard types.ShardID
	Topo  *topology.Topology
	Store storage.Config

	// ReadHoldTimeout bounds how long a read for a not-yet-seen SN is held
	// before returning ⊥ (§6.3 Safety; "a timeout of 1 ms is safe").
	ReadHoldTimeout time.Duration
	// ReadWorkers sizes the concurrent read/subscribe service lane; 0
	// serves reads inline on the (serialized) delivery loop.
	ReadWorkers int
	// WriteWorkers sizes the keyed write lane: appends/commits are pinned
	// to a worker by color (FIFO within a color, parallel across colors).
	// 0 keeps all mutations on the serialized delivery loop.
	WriteWorkers int
	// OrderCoalesce batches order requests per color for
	// OrderBatchInterval before shipping them to the leaf sequencer as one
	// OrderReqBatch (the replica-edge analogue of §5.2 aggregation).
	OrderCoalesce bool
	// OrderBatchInterval is the coalescing window; 0 still batches
	// whatever accumulated while the flusher was busy.
	OrderBatchInterval time.Duration
	// EarlyBound caps the buffer of OrderResps that arrive before their
	// AppendReq; 0 uses a large default. Tests shrink it to exercise
	// eviction.
	EarlyBound int
	// HeartbeatInterval is the replica→sequencer liveness beat.
	HeartbeatInterval time.Duration
	// RetryTimeout re-issues order requests that got no response (e.g.
	// across sequencer failover).
	RetryTimeout time.Duration
	// StoreFactory overrides how the storage stack is built (e.g. to
	// re-attach to restored device snapshots); nil uses storage.New(Store).
	StoreFactory func(storage.Config) (*storage.Store, error)
	// JoinBudget caps the records per color one join catch-up round may
	// carry (DESIGN.md §15); 0 uses 2048. Smaller rounds bound the memory
	// and wire footprint of a catch-up under live traffic.
	JoinBudget int
	// Tenants declares the multi-tenant QoS envelope (DESIGN.md §13):
	// per-tenant weighted-fair scheduling on both service lanes,
	// token-bucket admission control at the append ingress, and typed
	// Reject responses when a lane queue sheds. Empty = QoS off (legacy
	// blocking lanes, no admission control).
	Tenants []qos.TenantConfig

	// Obs, when set, publishes the replica's counters into the registry and
	// enables append/read stage tracing (see obs.go). The storage stack
	// inherits it unless Store.Obs is already set.
	Obs *obs.Registry
	// TraceSlow is the latency above which a traced request enters the
	// slow-request ring (/debug/traces); 0 means 1ms.
	TraceSlow time.Duration
	// TraceRing caps the slow-request ring; 0 means 64.
	TraceRing int
}

// DefaultConfig returns test-friendly timing parameters.
func DefaultConfig() Config {
	return Config{
		Store:              storage.TestConfig(),
		ReadHoldTimeout:    time.Millisecond,
		ReadWorkers:        4,
		WriteWorkers:       4,
		OrderBatchInterval: 5 * time.Microsecond,
		HeartbeatInterval:  5 * time.Millisecond,
		RetryTimeout:       30 * time.Millisecond,
	}
}

// pendingOrder tracks an append awaiting its sequence number.
type pendingOrder struct {
	color    types.ColorID
	nRecords uint32
	clients  map[types.NodeID]bool // who to ack on commit
	sentAt   time.Time

	// Tracing stamps, set only while the append tracer is enabled:
	// arrivedAt anchors the end-to-end latency, persistD is the PM
	// persistence stage measured in doAppend.
	arrivedAt time.Time
	persistD  time.Duration
}

// heldRead is a read request parked until its SN appears or times out.
type heldRead struct {
	req      proto.ReadReq
	from     types.NodeID
	deadline time.Time
}

// trimWait tracks the all-to-all ack barrier of one trim (§6.2).
type trimWait struct {
	req   proto.TrimReq
	from  types.NodeID
	acks  map[types.NodeID]bool
	peers []types.NodeID
}

// Stats counts replica activity.
type Stats struct {
	Appends      uint64
	BatchAppends uint64 // client-side coalesced batches (AppendBatchReq)
	BatchRecords uint64 // records carried by those batches
	Commits      uint64
	Reads        uint64
	HeldReads    uint64
	HeldWakeups  uint64 // parked reads released by a satisfying commit
	ReadMisses   uint64
	Subscribes   uint64
	Trims        uint64
	OReqRetries  uint64
	AppendDrops  uint64 // appends dropped because persistence failed (was silent)
	OReqDrops    uint64 // order requests dropped on topology lookup failure (was silent)
	Syncs        uint64
	SyncRetries  uint64 // stalled sync-phase stages re-driven (lossy links)
	SyncAborts   uint64 // wedged sync runs abandoned (peer crashed mid-run)
	Replays      uint64 // multi-append record sets replayed

	// Reconfiguration (DESIGN.md §15).
	JoinRounds      uint64 // catch-up fetch rounds ingested while joining
	JoinRecords     uint64 // records ingested through join catch-up
	ReconfigRejects uint64 // appends answered Reject(reconfiguring) while draining
	TopoApplies     uint64 // topology snapshots adopted from TopoUpdate
}

// counters is the live, atomically updated form of Stats: the read lane
// bumps these concurrently with the mutation loop.
type counters struct {
	appends      atomic.Uint64
	batchAppends atomic.Uint64
	batchRecords atomic.Uint64
	commits      atomic.Uint64
	reads        atomic.Uint64
	heldReads    atomic.Uint64
	heldWakeups  atomic.Uint64
	readMisses   atomic.Uint64
	subscribes   atomic.Uint64
	trims        atomic.Uint64
	oreqRetries  atomic.Uint64
	appendDrops  atomic.Uint64
	oreqDrops    atomic.Uint64
	syncs        atomic.Uint64
	syncRetries  atomic.Uint64
	syncAborts   atomic.Uint64
	replays      atomic.Uint64

	joinRounds      atomic.Uint64
	joinRecords     atomic.Uint64
	reconfigRejects atomic.Uint64
	topoApplies     atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Appends:      c.appends.Load(),
		BatchAppends: c.batchAppends.Load(),
		BatchRecords: c.batchRecords.Load(),
		Commits:      c.commits.Load(),
		Reads:        c.reads.Load(),
		HeldReads:    c.heldReads.Load(),
		HeldWakeups:  c.heldWakeups.Load(),
		ReadMisses:   c.readMisses.Load(),
		Subscribes:   c.subscribes.Load(),
		Trims:        c.trims.Load(),
		OReqRetries:  c.oreqRetries.Load(),
		AppendDrops:  c.appendDrops.Load(),
		OReqDrops:    c.oreqDrops.Load(),
		Syncs:        c.syncs.Load(),
		SyncRetries:  c.syncRetries.Load(),
		SyncAborts:   c.syncAborts.Load(),
		Replays:      c.replays.Load(),

		JoinRounds:      c.joinRounds.Load(),
		JoinRecords:     c.joinRecords.Load(),
		ReconfigRejects: c.reconfigRejects.Load(),
		TopoApplies:     c.topoApplies.Load(),
	}
}

// atomicMode is the replica mode as a lock-free cell: every inbound
// message (on either lane) checks it.
type atomicMode struct{ v atomic.Int32 }

func (m *atomicMode) load() Mode    { return Mode(m.v.Load()) }
func (m *atomicMode) store(md Mode) { m.v.Store(int32(md)) }

// Replica is one data-layer node.
type Replica struct {
	cfg  Config
	topo *topology.Topology
	ep   transport.Endpoint
	st   *storage.Store

	// Lock-free state shared between the mutation loop and the read lane.
	mode    atomicMode
	ready   atomic.Bool  // endpoint published; handle drops messages until set
	maxSeen watermarks   // per-color highest SN observed (commit or sync)
	held    heldRegistry // parked reads keyed by (color, SN)
	stats   counters
	coal    *orderCoalescer // per-color order-request batching (nil = direct)
	admit   *qos.Admission  // per-tenant append admission (nil = unlimited)
	tenants tenantRegistry  // per-tenant QoS counters

	// Tracers for the two service paths (nil when Config.Obs is unset;
	// every method is nil-safe). See obs.go.
	appendTr *obs.Tracer
	readTr   *obs.Tracer

	// joinLag is the latest catch-up lag estimate (MaxUint64 before the
	// first round answers); read lock-free by the control plane.
	joinLag atomic.Uint64

	mu         sync.Mutex
	join       *joinState   // active catch-up transfer (ModeJoining)
	epoch      types.Epoch  // known sequencer epoch (§6.3)
	seqNode    types.NodeID // current leaf-sequencer leader
	pending    map[types.Token]*pendingOrder
	trims      map[uint64]*trimWait
	initSeq    types.NodeID // sequencer awaiting SeqInitAck after sync
	initEpo    types.Epoch
	syncRuns   map[uint64]*syncRun // concurrent sync-phases, keyed by run id
	syncSeq    uint64
	replays    map[types.Token]*replayWait
	early      map[types.Token]proto.OrderResp // OResps that beat the AppendReq
	earlyOrder []types.Token                   // insertion order of early entries (oldest first)
	stopCh     chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
	laneStop   func() // drains a handler-wrapped read lane (custom endpoints)

	// Lane stats funcs, set only on custom endpoints (NewWithEndpoint);
	// network-managed lanes report through Network.LaneStats instead.
	laneStats  func() transport.LaneStats
	wlaneStats func() transport.WriteLaneStats
}

// New creates a replica, attaches it to the network, and starts its timers.
func New(cfg Config, net *transport.Network) (*Replica, error) {
	st, err := buildStore(cfg)
	if err != nil {
		return nil, err
	}
	r := newReplica(cfg, st)
	ep, err := net.RegisterWithLanes(cfg.ID, r.handle, r.lanes())
	if err != nil {
		return nil, err
	}
	r.ep = ep
	r.ready.Store(true)
	r.start()
	return r, nil
}

// NewWithEndpoint creates a replica over a custom endpoint (TCP mode).
// Read- and write-class traffic is served by handler-level worker pools,
// since the endpoint is not managed by the in-process Network.
func NewWithEndpoint(cfg Config, attach func(h transport.Handler) (transport.Endpoint, error)) (*Replica, error) {
	st, err := buildStore(cfg)
	if err != nil {
		return nil, err
	}
	r := newReplica(cfg, st)
	h, readStats, writeStats, stop := transport.WithLanes(r.handle, r.lanes())
	r.laneStop = stop
	r.laneStats, r.wlaneStats = readStats, writeStats
	ep, err := attach(h)
	if err != nil {
		stop()
		return nil, err
	}
	r.ep = ep
	r.ready.Store(true)
	r.start()
	return r, nil
}

// buildStore constructs the replica's storage stack. The replica's
// registry flows into the store config so one Config.Obs switch lights up
// the whole node.
func buildStore(cfg Config) (*storage.Store, error) {
	if cfg.Obs != nil && cfg.Store.Obs == nil {
		cfg.Store.Obs = cfg.Obs
		cfg.Store.ObsNode = fmt.Sprintf("%d", cfg.ID)
	}
	if cfg.StoreFactory != nil {
		return cfg.StoreFactory(cfg.Store)
	}
	return storage.New(cfg.Store)
}

func newReplica(cfg Config, st *storage.Store) *Replica {
	r := &Replica{
		cfg:      cfg,
		topo:     cfg.Topo,
		st:       st,
		epoch:    1,
		pending:  make(map[types.Token]*pendingOrder),
		trims:    make(map[uint64]*trimWait),
		replays:  make(map[types.Token]*replayWait),
		early:    make(map[types.Token]proto.OrderResp),
		syncRuns: make(map[uint64]*syncRun),
		stopCh:   make(chan struct{}),
	}
	r.mode.store(ModeOperational)
	r.admit = qos.NewAdmission(cfg.Tenants)
	r.initObs()
	if cfg.OrderCoalesce {
		r.coal = newOrderCoalescer(r)
	}
	if sh, err := cfg.Topo.Shard(cfg.Shard); err == nil {
		if si, err := cfg.Topo.Sequencer(sh.Leaf); err == nil {
			r.seqNode = si.Leader
		}
	}
	return r
}

func (r *Replica) start() {
	r.wg.Add(1)
	go r.timerLoop()
	if r.coal != nil {
		r.wg.Add(1)
		go r.coal.loop()
	}
}

// ID returns this replica's node id.
func (r *Replica) ID() types.NodeID { return r.cfg.ID }

// Mode returns the replica's current mode.
func (r *Replica) Mode() Mode {
	return r.mode.load()
}

// Epoch returns the sequencer epoch the replica currently follows.
func (r *Replica) Epoch() types.Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Store exposes the storage stack (benchmarks and tests).
func (r *Replica) Store() *storage.Store { return r.st }

// Stats returns a snapshot of the counters.
func (r *Replica) Stats() Stats {
	return r.stats.snapshot()
}

// HeldReads returns the number of currently parked reads (read-lane
// queue-depth metric for the bench harness).
func (r *Replica) HeldReads() int { return r.held.size() }

// Stop shuts the replica down gracefully.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		r.mode.store(ModeStopped)
		close(r.stopCh)
		if r.laneStop != nil {
			r.laneStop()
		}
	})
	r.wg.Wait()
}

// shardPeers returns the other replicas of this shard.
func (r *Replica) shardPeers() []types.NodeID {
	sh, err := r.topo.Shard(r.cfg.Shard)
	if err != nil {
		return nil
	}
	var out []types.NodeID
	for _, id := range sh.Replicas {
		if id != r.cfg.ID {
			out = append(out, id)
		}
	}
	return out
}

// leafColor returns the leaf region this replica's shard attaches to.
func (r *Replica) leafColor() types.ColorID {
	sh, err := r.topo.Shard(r.cfg.Shard)
	if err != nil {
		return types.MasterColor
	}
	return sh.Leaf
}

// sequencer returns the current leaf-sequencer leader to send OReqs to.
func (r *Replica) sequencer() types.NodeID {
	r.mu.Lock()
	known := r.seqNode
	r.mu.Unlock()
	// Prefer the topology's routing (updated on failover); fall back to
	// the last SeqInit sender.
	if leader, err := r.topo.Leader(r.leafColor()); err == nil && leader != 0 {
		return leader
	}
	return known
}

// handle dispatches one inbound message. Read-class messages arrive here
// on lane workers, everything else on the delivery loop.
func (r *Replica) handle(from types.NodeID, msg transport.Message) {
	if !r.ready.Load() {
		// Delivery starts at Register, before the endpoint is published;
		// drop the racing message — every protocol re-drives lost ones.
		return
	}
	mode := r.mode.load()
	if mode == ModeCrashed || mode == ModeStopped {
		return
	}
	switch m := msg.(type) {
	case proto.AppendReq:
		r.onAppend(from, m)
	case proto.AppendBatchReq:
		r.onAppendBatch(from, m)
	case proto.OrderResp:
		r.onOrderResp(m)
	case proto.OrderRespBatch:
		r.onOrderRespBatch(m)
	case proto.ReadReq:
		r.onRead(from, m)
	case proto.SubscribeReq:
		r.onSubscribe(from, m)
	case proto.TrimReq:
		r.onTrim(from, m)
	case proto.TrimPeerAck:
		r.onTrimPeerAck(m)
	case proto.MultiAppendEnd:
		r.onMultiAppendEnd(from, m)
	case proto.AppendAck:
		r.onAppendAck(from, m) // acks for replays this replica initiated
	case proto.SeqInit:
		r.onSeqInit(m)
	case proto.SyncRequest:
		r.onSyncRequest(from, m)
	case proto.SyncState:
		r.onSyncState(m)
	case proto.SyncCatchup:
		r.onSyncCatchup(m)
	case proto.SyncFetch:
		r.onSyncFetch(from, m)
	case proto.SyncEntries:
		r.onSyncEntries(m)
	case proto.SyncDone:
		r.onSyncDone(m)
	case proto.JoinFetch:
		r.onJoinFetch(from, m)
	case proto.JoinEntries:
		r.onJoinEntries(m)
	case proto.TopoUpdate:
		r.onTopoUpdate(m)
	case proto.CtrlReconfig:
		r.onCtrlReconfig(from, m)
	case proto.ReplicaHeartbeat:
		// peer liveness; nothing to do in the happy path
	}
}

// ---- Append protocol (Alg. 1, replica role) ----

func (r *Replica) onAppend(from types.NodeID, m proto.AppendReq) {
	if !r.admitAppend(from, m.Tenant, m.Token, m.Color, m.Client, len(m.Records)) {
		return
	}
	r.tenantCounters(m.Tenant).appendObserved(uint64(len(m.Records)))
	r.doAppend(from, m.Color, m.Token, m.Records, m.Client)
}

// onAppendBatch handles a client-side coalesced batch: the sets are
// flattened and persisted/ordered as one unit, so they occupy one
// consecutive SN range and the batching client can demultiplex per-set
// SNs from the last SN in the AppendAck.
func (r *Replica) onAppendBatch(from types.NodeID, m proto.AppendBatchReq) {
	records := make([][]byte, 0, m.NRecords())
	for _, set := range m.Sets {
		records = append(records, set...)
	}
	if len(records) == 0 {
		return
	}
	if !r.admitAppend(from, m.Tenant, m.Token, m.Color, m.Client, len(records)) {
		return
	}
	r.tenantCounters(m.Tenant).appendObserved(uint64(len(records)))
	r.stats.batchAppends.Add(1)
	r.stats.batchRecords.Add(uint64(len(records)))
	r.doAppend(from, m.Color, m.Token, records, m.Client)
}

// doAppend runs the replica side of the append protocol for one token.
func (r *Replica) doAppend(from types.NodeID, color types.ColorID, token types.Token, records [][]byte, client types.NodeID) {
	if mode := r.mode.load(); mode != ModeOperational {
		// §6.3: replicas in sync mode stop processing new appends — the
		// client (or broker) retries. Draining replicas answer with a typed
		// retryable rejection so clients re-resolve membership immediately
		// instead of burning the timeout.
		if mode == ModeDraining {
			r.rejectDraining(from, color, token, client)
		}
		return
	}
	r.stats.appends.Add(1)
	if client == 0 {
		client = from
	}
	// Tracing stamps: arrivedAt anchors end-to-end latency, persistD is
	// measured around PutBatch. Zero-value when the tracer is off.
	var arrivedAt time.Time
	if r.appendTr.Enabled() {
		arrivedAt = time.Now()
	}
	r.mu.Lock()
	if po, dup := r.pending[token]; dup {
		// Retried append still awaiting its SN: remember the (possibly
		// additional) client and re-drive the order request.
		po.clients[client] = true
		po.sentAt = time.Time{} // force re-send on next tick
		r.mu.Unlock()
		r.sendOrderReq(token, color, uint32(len(records)))
		return
	}
	r.mu.Unlock()

	err := r.st.PutBatch(color, token, records)
	var persistD time.Duration
	if !arrivedAt.IsZero() {
		persistD = time.Since(arrivedAt)
	}
	if err != nil && !errors.Is(err, storage.ErrDuplicateToken) {
		// Out of space or oversized; the client times out and retries
		// elsewhere. Count it: silent drops made capacity exhaustion look
		// like network loss.
		r.stats.appendDrops.Add(1)
		return
	}
	wasDup := errors.Is(err, storage.ErrDuplicateToken)
	if wasDup {
		// Already persisted. If also committed, ack immediately.
		if sn, ok := r.st.TokenSN(token); ok && sn.Valid() {
			r.ep.Send(client, proto.AppendAck{Token: token, SN: sn})
			return
		}
		// Persisted but not yet committed: fall through so this client is
		// registered in pending and acked when the OrderResp lands.
	}
	r.mu.Lock()
	if early, ok := r.early[token]; ok {
		// The OResp raced ahead of the client's broadcast: commit now.
		delete(r.early, token)
		r.mu.Unlock()
		r.onOrderResp(early)
		// Record the client so the (already-processed) response reaches it.
		if sn, ok := r.st.TokenSN(token); ok && sn.Valid() {
			r.ep.Send(client, proto.AppendAck{Token: token, SN: sn})
		}
		return
	}
	if po, dup := r.pending[token]; dup {
		po.clients[client] = true
	} else {
		r.pending[token] = &pendingOrder{
			color:     color,
			nRecords:  uint32(len(records)),
			clients:   map[types.NodeID]bool{client: true},
			sentAt:    time.Now(),
			arrivedAt: arrivedAt,
			persistD:  persistD,
		}
	}
	r.mu.Unlock()
	if wasDup {
		// Close the ack gap for persisted-uncommitted duplicates: if the
		// commit landed between the TokenSN check above and the pending
		// registration, onOrderResp consumed the old pending entry (acking
		// only its clients) and will never fire again for this token — the
		// entry just created would wait for the retry timer to re-drive the
		// whole round trip. Re-check now that we are registered: seeing a
		// valid SN means the commit already happened, so ack directly and
		// retire the stranded entry (any clients that raced into it run
		// this same re-check themselves).
		if sn, ok := r.st.TokenSN(token); ok && sn.Valid() {
			r.mu.Lock()
			po := r.pending[token]
			delete(r.pending, token)
			r.mu.Unlock()
			acked := map[types.NodeID]bool{client: true}
			r.ep.Send(client, proto.AppendAck{Token: token, SN: sn})
			if po != nil {
				for c := range po.clients {
					if !acked[c] {
						r.ep.Send(c, proto.AppendAck{Token: token, SN: sn})
					}
				}
			}
			return
		}
	}
	r.sendOrderReq(token, color, uint32(len(records)))
}

// sendOrderReq issues the round-2 order request to the leaf sequencer,
// either directly or through the per-color coalescer.
func (r *Replica) sendOrderReq(token types.Token, color types.ColorID, n uint32) {
	if r.coal != nil {
		r.coal.enqueue(color, proto.OrderItem{Token: token, NRecords: n})
		return
	}
	sh, err := r.topo.Shard(r.cfg.Shard)
	if err != nil {
		// Dropped here means the append stalls until the retry timer; count
		// it instead of failing silently.
		r.stats.oreqDrops.Add(1)
		return
	}
	req := proto.OrderReq{
		Color:    color,
		Token:    token,
		NRecords: n,
		Shard:    r.cfg.Shard,
		Replicas: r.orderReplicas(sh.Replicas),
	}
	r.ep.Send(r.sequencer(), req)
}

func (r *Replica) onOrderResp(m proto.OrderResp) {
	var commitStart time.Time
	if r.appendTr.Enabled() {
		commitStart = time.Now()
	}
	if err := r.st.Commit(m.Token, m.LastSN); err != nil {
		if errors.Is(err, storage.ErrUnknownToken) {
			// OResp for a record another shard replica persisted but we
			// have not seen yet (the client's round-1 broadcast to us is
			// still in flight): buffer it so onAppend can commit
			// immediately on arrival.
			r.bufferEarly(m)
			return
		}
		// Conflicting SN for an already-committed token: first wins; the
		// extra range becomes a hole, which is legal (§6.3).
	}
	r.stats.commits.Add(1)
	r.maxSeen.bump(m.Color, m.LastSN)
	r.mu.Lock()
	po := r.pending[m.Token]
	delete(r.pending, m.Token)
	var clients []types.NodeID
	if po != nil {
		for c := range po.clients {
			clients = append(clients, c)
		}
	}
	r.mu.Unlock()
	if po != nil && !commitStart.IsZero() && !po.arrivedAt.IsZero() {
		r.traceAppend(m.Token, po, commitStart)
	}
	sn, _ := r.st.TokenSN(m.Token)
	for _, c := range clients {
		r.ep.Send(c, proto.AppendAck{Token: m.Token, SN: sn})
	}
	r.wakeHeld(m.Color, r.frontier(m.Color))
}

// bufferEarly stores an OrderResp that beat its AppendReq. The buffer is
// bounded (Config.EarlyBound): overflow evicts the oldest live entry —
// never the one just inserted. The previous random map-iteration eviction
// could drop the just-buffered response itself, stalling that append until
// the sequencer's retry rebroadcast.
func (r *Replica) bufferEarly(m proto.OrderResp) {
	bound := r.cfg.EarlyBound
	if bound <= 0 {
		bound = 1 << 16
	}
	r.mu.Lock()
	if _, exists := r.early[m.Token]; !exists {
		r.earlyOrder = append(r.earlyOrder, m.Token)
	}
	r.early[m.Token] = m
	for len(r.early) > bound {
		var victim types.Token
		found := false
		for len(r.earlyOrder) > 0 {
			t := r.earlyOrder[0]
			if t == m.Token {
				break // the oldest live entry is the new one: keep it
			}
			r.earlyOrder = r.earlyOrder[1:]
			// Skip stale queue entries whose map entry onAppend consumed.
			if _, live := r.early[t]; live {
				victim, found = t, true
				break
			}
		}
		if !found {
			break
		}
		// Dropping a buffered OResp is harmless: the sequencer rebroadcasts
		// on the owning replica's retry.
		delete(r.early, victim)
	}
	// onAppend deletes from the map only, so stale tokens accumulate in the
	// queue; compact when they dominate.
	if len(r.earlyOrder) > 4*len(r.early)+64 {
		live := r.earlyOrder[:0]
		for _, t := range r.earlyOrder {
			if _, ok := r.early[t]; ok {
				live = append(live, t)
			}
		}
		r.earlyOrder = live
	}
	r.mu.Unlock()
}

// The read protocol (§6.1, §6.3 read-hold) and subscribe (§6.2) live in
// readpath.go: they run concurrently on the transport's read lane.

// ---- Trim (§6.2) with the all-to-all ack barrier ----

func (r *Replica) onTrim(from types.NodeID, m proto.TrimReq) {
	if _, _, err := r.st.Trim(m.Color, m.SN); err != nil {
		return
	}
	r.stats.trims.Add(1)
	r.mu.Lock()
	client := m.Client
	if client == 0 {
		client = from
	}
	peers := r.trimPeers(m.Color)
	tw := r.trims[m.ID]
	if tw == nil {
		tw = &trimWait{req: m, from: client, acks: make(map[types.NodeID]bool), peers: peers}
		r.trims[m.ID] = tw
	} else {
		tw.from = client
	}
	tw.acks[r.cfg.ID] = true
	done := r.trimDoneLocked(tw)
	r.mu.Unlock()
	// Round 2: ack to all replicas participating in the trim.
	ack := proto.TrimPeerAck{ID: m.ID, Color: m.Color, SN: m.SN, From: r.cfg.ID}
	r.ep.Broadcast(peers, ack)
	if done {
		r.finishTrim(m.ID)
	}
}

// trimPeers lists every other replica of every shard of the color's region.
func (r *Replica) trimPeers(color types.ColorID) []types.NodeID {
	all := r.topo.ReplicasInRegion(color)
	var out []types.NodeID
	for _, id := range all {
		if id != r.cfg.ID {
			out = append(out, id)
		}
	}
	return out
}

func (r *Replica) onTrimPeerAck(m proto.TrimPeerAck) {
	r.mu.Lock()
	tw := r.trims[m.ID]
	if tw == nil {
		// Peer ack arrived before the client's TrimReq reached us: record
		// it; the TrimReq handler will find the entry.
		tw = &trimWait{acks: make(map[types.NodeID]bool)}
		r.trims[m.ID] = tw
	}
	tw.acks[m.From] = true
	done := r.trimDoneLocked(tw)
	r.mu.Unlock()
	if done {
		r.finishTrim(m.ID)
	}
}

// trimDoneLocked reports whether every participant acked. Caller holds mu.
func (r *Replica) trimDoneLocked(tw *trimWait) bool {
	if tw.from == 0 {
		return false // haven't seen the TrimReq itself yet
	}
	for _, p := range tw.peers {
		if !tw.acks[p] {
			return false
		}
	}
	return tw.acks[r.cfg.ID]
}

// finishTrim sends the [head, tail] answer to the caller (round 3).
func (r *Replica) finishTrim(id uint64) {
	r.mu.Lock()
	tw := r.trims[id]
	if tw == nil {
		r.mu.Unlock()
		return
	}
	delete(r.trims, id)
	r.mu.Unlock()
	head, tail := r.st.Bounds(tw.req.Color)
	r.ep.Send(tw.from, proto.TrimAck{ID: id, Color: tw.req.Color, Head: head, Tail: tail})
}

// ---- Timers ----

func (r *Replica) timerLoop() {
	defer r.wg.Done()
	interval := r.cfg.HeartbeatInterval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	hold := r.cfg.ReadHoldTimeout
	if hold > 0 && hold < interval {
		interval = hold
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case now := <-t.C:
			switch r.mode.load() {
			case ModeOperational, ModeDraining:
				// Draining keeps the order-retry and heartbeat machinery
				// alive so its pending appends flush before Stop.
				r.expireHeldReads(now)
				r.retrySyncRuns(now)
				r.retryPendingOrders(now)
				r.ep.Send(r.sequencer(), proto.ReplicaHeartbeat{From: r.cfg.ID})
			case ModeSyncing:
				r.expireHeldReads(now)
				r.retrySyncRuns(now)
			case ModeJoining:
				r.retryJoin(now)
			}
		}
	}
}

// retryPendingOrders re-issues order requests that have gone unanswered
// (e.g. the sequencer failed over and its backups are stateless).
func (r *Replica) retryPendingOrders(now time.Time) {
	if r.cfg.RetryTimeout <= 0 {
		return
	}
	type resend struct {
		token types.Token
		color types.ColorID
		n     uint32
	}
	var out []resend
	r.mu.Lock()
	for tok, po := range r.pending {
		if po.sentAt.IsZero() || now.Sub(po.sentAt) >= r.cfg.RetryTimeout {
			po.sentAt = now
			r.stats.oreqRetries.Add(1)
			out = append(out, resend{token: tok, color: po.color, n: po.nRecords})
		}
	}
	r.mu.Unlock()
	for _, o := range out {
		r.sendOrderReq(o.token, o.color, o.n)
	}
}
