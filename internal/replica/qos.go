package replica

import (
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/qos"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// This file is the replica half of the multi-tenant QoS layer (DESIGN.md
// §13). Three mechanisms compose:
//
//   - admission control: append ingress charges the tenant's token bucket
//     (Config.Tenants rates); over-rate requests are answered with a typed
//     Reject(throttled) carrying a retry-after hint instead of being
//     processed — the aggressor pays before it can queue.
//   - weighted-fair lanes: with Config.Tenants set, both service lanes
//     switch to per-tenant DRR queues (transport.LaneQoS), so a tenant
//     that floods past admission still cannot monopolize lane workers.
//   - typed shedding: a full tenant queue sheds to onShed, which answers
//     the caller with Reject(overloaded) — overload is always an explicit
//     client-visible signal, never silent queue growth.

// overloadRetryAfter is the hint attached to lane-shed rejections: long
// enough for a DRR round to drain, short enough that a recovered lane is
// re-probed quickly.
const overloadRetryAfter = time.Millisecond

// laneTenantOf extracts the tenant identity the QoS scheduler keys on.
// Internal traffic (order responses, sync, heartbeats) reports ok=false
// and schedules under the default tenant.
func laneTenantOf(msg transport.Message) (types.TenantID, bool) {
	switch m := msg.(type) {
	case proto.AppendReq:
		return m.Tenant, true
	case proto.AppendBatchReq:
		return m.Tenant, true
	case proto.ReadReq:
		return m.Tenant, true
	}
	return types.DefaultTenant, false
}

// laneQoS builds the lane scheduling config; zero-value (disabled) when no
// tenants are declared.
func (r *Replica) laneQoS() transport.LaneQoS {
	if len(r.cfg.Tenants) == 0 {
		return transport.LaneQoS{}
	}
	return transport.LaneQoS{
		TenantOf: laneTenantOf,
		Weights:  qos.Weights(r.cfg.Tenants),
		Shed:     r.onShed,
	}
}

// onShed answers a lane-shed message with a typed Reject so the client
// sees ErrOverloaded instead of a timeout. Internal messages (order
// responses et al.) have no caller to answer; their shed is still counted
// by the lane.
func (r *Replica) onShed(from types.NodeID, msg transport.Message, tenant types.TenantID) {
	rej := proto.Reject{
		Tenant:           tenant,
		Code:             proto.RejectOverloaded,
		RetryAfterMicros: uint64(overloadRetryAfter / time.Microsecond),
	}
	var client types.NodeID
	switch m := msg.(type) {
	case proto.AppendReq:
		rej.Token, rej.Color, client = m.Token, m.Color, m.Client
	case proto.AppendBatchReq:
		rej.Token, rej.Color, client = m.Token, m.Color, m.Client
	case proto.ReadReq:
		rej.ID, rej.Color, rej.IsRead, client = m.ID, m.Color, true, m.Client
	case proto.SubscribeReq:
		rej.ID, rej.Color, rej.IsRead, client = m.ID, m.Color, true, m.Client
	default:
		return
	}
	if client == 0 {
		client = from
	}
	r.tenantCounters(tenant).shed.Add(1)
	r.ep.Send(client, rej)
}

// admitAppend charges n records against the tenant's token bucket. On
// over-rate it answers with Reject(throttled) + retry-after and reports
// false; the caller drops the request unprocessed.
func (r *Replica) admitAppend(from types.NodeID, tenant types.TenantID, token types.Token, color types.ColorID, client types.NodeID, n int) bool {
	ok, wait := r.admit.Admit(tenant, n, time.Now())
	if ok {
		return true
	}
	if client == 0 {
		client = from
	}
	r.tenantCounters(tenant).throttled.Add(1)
	r.ep.Send(client, proto.Reject{
		Token:            token,
		Color:            color,
		Tenant:           tenant,
		Code:             proto.RejectThrottled,
		RetryAfterMicros: uint64(wait / time.Microsecond),
	})
	return false
}

// ---- Per-tenant counters ----

// TenantStats is one tenant's replica-side QoS accounting.
type TenantStats struct {
	Tenant    types.TenantID
	Appends   uint64 // admitted append requests
	Records   uint64 // records those appends carried
	Reads     uint64 // read requests served
	Throttled uint64 // appends rejected by admission control
	Shed      uint64 // requests shed from full lane queues
}

// tenantCounters is the live atomic form of TenantStats.
type tenantCounters struct {
	appends   atomic.Uint64
	records   atomic.Uint64
	reads     atomic.Uint64
	throttled atomic.Uint64
	shed      atomic.Uint64
}

func (c *tenantCounters) appendObserved(records uint64) {
	c.appends.Add(1)
	c.records.Add(records)
}

// tenantRegistry lazily materializes counters per tenant id. Reads are a
// lock-free sync.Map hit; the write path only runs the first time a
// tenant is seen.
type tenantRegistry struct {
	m sync.Map // types.TenantID -> *tenantCounters
}

func (t *tenantRegistry) get(id types.TenantID) *tenantCounters {
	if v, ok := t.m.Load(id); ok {
		return v.(*tenantCounters)
	}
	v, _ := t.m.LoadOrStore(id, new(tenantCounters))
	return v.(*tenantCounters)
}

// tenantCounters returns the live counters for one tenant.
func (r *Replica) tenantCounters(id types.TenantID) *tenantCounters {
	return r.tenants.get(id)
}

// TenantStats snapshots every tenant the replica has seen, sorted by id.
func (r *Replica) TenantStats() []TenantStats {
	var out []TenantStats
	r.tenants.m.Range(func(k, v any) bool {
		c := v.(*tenantCounters)
		out = append(out, TenantStats{
			Tenant:    k.(types.TenantID),
			Appends:   c.appends.Load(),
			Records:   c.records.Load(),
			Reads:     c.reads.Load(),
			Throttled: c.throttled.Load(),
			Shed:      c.shed.Load(),
		})
		return true
	})
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Tenant < out[j-1].Tenant; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
