package replica

import (
	"sort"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/storage"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// This file implements the §6.3 recovery protocols:
//
//   - replica crash/recovery with the sync-phase: the recovering replica
//     pauses the shard, peers exchange (epoch, max committed SN), outdated
//     replicas fetch missing entries from the most up-to-date one, and an
//     all-to-all SyncDone barrier gates the return to operational mode;
//   - sequencer failover handling: on SeqInit from a new leader the shard
//     passes through a sync-phase and only then acknowledges, guaranteeing
//     that interrupted broadcasts of the previous epoch are received by all
//     replicas before the new epoch starts;
//   - re-issuing of order requests for records that have no SN after the
//     sync-phase.

// syncRun tracks one sync-phase this replica participates in.
type syncRun struct {
	id           uint64
	coordinator  types.NodeID
	states       map[types.NodeID]proto.SyncState // coordinator only
	dones        map[types.NodeID]bool
	fetching     bool
	caughtUp     bool
	participants []types.NodeID // shard replicas (incl. self)

	// Retry state: sync messages are fire-and-forget, so on lossy links
	// every stage is re-driven until the run completes (retrySyncRuns).
	started     time.Time
	lastDrive   time.Time
	fetchTarget types.NodeID
	fetchHave   map[types.ColorID]types.SN
}

// syncAbortRetries bounds how long a sync run may stall before it is
// abandoned, in units of RetryTimeout. Retries recover lost messages, but
// a run whose peer CRASHED mid-run is unrecoverable: Crash wipes the
// peer's syncRuns, so it can neither answer the old run's barrier nor its
// coordinator role. Such runs are dropped; a coordinator restarts with a
// fresh id over the current peers (longer than any structural nemesis
// window, so only truly wedged runs are aborted).
const syncAbortRetries = 10

// Crash simulates a crash failure of the replica process: the devices stop
// and all messages are ignored until Recover.
func (r *Replica) Crash() {
	r.mode.store(ModeCrashed)
	r.held.drain() // parked reads are dropped; clients time out and retry
	r.mu.Lock()
	r.pending = make(map[types.Token]*pendingOrder)
	r.trims = make(map[uint64]*trimWait)
	r.syncRuns = make(map[uint64]*syncRun)
	r.mu.Unlock()
	r.st.Crash()
}

// Recover restarts the replica after a crash: storage is re-opened and
// scanned, then the sync-phase runs so the shard converges before this
// replica serves again (§6.3 "When a replica recovers, a synchronization
// phase takes place…").
func (r *Replica) Recover() error {
	if err := r.st.Recover(); err != nil {
		return err
	}
	r.mode.store(ModeSyncing)
	r.maxSeen.reset() // the sync-phase rebuilds the watermarks from storage
	r.startSyncPhase()
	return nil
}

// startSyncPhase begins a sync-phase with this replica as coordinator.
func (r *Replica) startSyncPhase() {
	peers := r.shardPeers()
	r.mu.Lock()
	r.syncSeq++
	id := uint64(r.cfg.ID)<<32 | r.syncSeq
	run := &syncRun{
		id:           id,
		coordinator:  r.cfg.ID,
		states:       make(map[types.NodeID]proto.SyncState),
		dones:        make(map[types.NodeID]bool),
		participants: append([]types.NodeID{r.cfg.ID}, peers...),
	}
	run.started = time.Now()
	run.lastDrive = run.started
	r.syncRuns[id] = run
	r.mode.store(ModeSyncing)
	r.stats.syncs.Add(1)
	// Record our own state.
	run.states[r.cfg.ID] = proto.SyncState{ID: id, Epoch: r.epoch, MaxSNs: r.maxSNsLocked(), Trimmed: r.maxTrimsLocked(), From: r.cfg.ID}
	r.mu.Unlock()

	if len(peers) == 0 {
		// Singleton shard: nothing to converge with.
		r.mu.Lock()
		delete(r.syncRuns, id)
		if len(r.syncRuns) == 0 {
			r.finishSyncLocked()
		}
		r.mu.Unlock()
		return
	}
	r.ep.Broadcast(peers, proto.SyncRequest{ID: id, From: r.cfg.ID})
}

// maxSNsLocked snapshots this replica's per-color committed frontier.
// Caller holds r.mu (storage does its own locking).
func (r *Replica) maxSNsLocked() map[types.ColorID]types.SN {
	out := make(map[types.ColorID]types.SN)
	for _, c := range r.topo.Colors() {
		if sn := r.st.MaxSN(c); sn.Valid() {
			out[c] = sn
		}
	}
	return out
}

// maxTrimsLocked snapshots this replica's per-color trim frontier; it
// rides along with the committed frontier in SyncState so recovering
// replicas learn about trims that ran during their downtime.
func (r *Replica) maxTrimsLocked() map[types.ColorID]types.SN {
	out := make(map[types.ColorID]types.SN)
	for _, c := range r.topo.Colors() {
		if sn := r.st.Trimmed(c); sn.Valid() {
			out[c] = sn
		}
	}
	return out
}

func (r *Replica) onSyncRequest(from types.NodeID, m proto.SyncRequest) {
	r.mu.Lock()
	// Enter sync mode: stop processing appends and sequencer messages
	// (§6.3). Reads keep being served — committed entries stay readable.
	// Concurrent recoveries each coordinate their own run; a replica
	// participates in all of them and resumes when the last completes.
	r.mode.store(ModeSyncing)
	if r.syncRuns[m.ID] == nil {
		r.syncRuns[m.ID] = &syncRun{
			id:           m.ID,
			coordinator:  m.From,
			dones:        make(map[types.NodeID]bool),
			participants: append([]types.NodeID{r.cfg.ID}, r.shardPeersLocked()...),
			started:      time.Now(),
		}
	}
	r.syncRuns[m.ID].lastDrive = time.Now()
	state := proto.SyncState{ID: m.ID, Epoch: r.epoch, MaxSNs: r.maxSNsLocked(), Trimmed: r.maxTrimsLocked(), From: r.cfg.ID}
	r.mu.Unlock()
	r.ep.Send(m.From, state)
}

// shardPeersLocked is shardPeers without retaking topology locks under mu
// (topology has its own synchronization; this is just a naming helper).
func (r *Replica) shardPeersLocked() []types.NodeID { return r.shardPeers() }

func (r *Replica) onSyncState(m proto.SyncState) {
	r.mu.Lock()
	run := r.syncRuns[m.ID]
	if run == nil || run.coordinator != r.cfg.ID {
		r.mu.Unlock()
		return
	}
	run.states[m.From] = m
	if len(run.states) < len(run.participants) {
		r.mu.Unlock()
		return
	}
	// All states collected. If epochs disagree, adopt the highest (the
	// paper retries until the old sequencer is gone; with our reliable
	// in-proc links adopting the maximum converges immediately).
	maxEpoch := r.epoch
	for _, st := range run.states {
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	r.epoch = maxEpoch
	// Determine the most up-to-date replica: the one with the highest
	// total committed frontier (ties broken by node id for determinism).
	best := r.cfg.ID
	bestScore := scoreFrontier(run.states[r.cfg.ID].MaxSNs)
	ids := make([]types.NodeID, 0, len(run.states))
	for id := range run.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	maxFrontier := make(map[types.ColorID]types.SN)
	maxTrimmed := make(map[types.ColorID]types.SN)
	for _, id := range ids {
		st := run.states[id]
		for c, sn := range st.MaxSNs {
			if sn > maxFrontier[c] {
				maxFrontier[c] = sn
			}
		}
		for c, sn := range st.Trimmed {
			if sn > maxTrimmed[c] {
				maxTrimmed[c] = sn
			}
		}
		if sc := scoreFrontier(st.MaxSNs); sc > bestScore || (sc == bestScore && id > best) {
			best, bestScore = id, sc
		}
	}
	epoch := r.epoch
	id := run.id
	run.lastDrive = time.Now()
	participants := append([]types.NodeID(nil), run.participants...)
	r.mu.Unlock()

	// Round 2: broadcast the most up-to-date replica id (§6.3).
	msg := proto.SyncCatchup{ID: id, UpToDate: best, Max: maxFrontier, Trimmed: maxTrimmed, Epoch: epoch, From: r.cfg.ID}
	for _, p := range participants {
		if p == r.cfg.ID {
			r.onSyncCatchup(msg)
		} else {
			r.ep.Send(p, msg)
		}
	}
}

// scoreFrontier sums a frontier's counters as an up-to-dateness measure.
func scoreFrontier(m map[types.ColorID]types.SN) uint64 {
	var total uint64
	for _, sn := range m {
		total += uint64(sn)
	}
	return total
}

func (r *Replica) onSyncCatchup(m proto.SyncCatchup) {
	r.mu.Lock()
	run := r.syncRuns[m.ID]
	if run == nil {
		r.mu.Unlock()
		return
	}
	if m.Epoch > r.epoch {
		r.epoch = m.Epoch
	}
	// Converge on the shard's trim frontier first: records trimmed while
	// this replica was down must not be resurrected (and must not be
	// re-fetched below).
	for c, sn := range m.Trimmed {
		if sn > r.st.Trimmed(c) {
			r.st.Trim(c, sn)
		}
	}
	// Work out whether we are missing anything the up-to-date replica has.
	need := make(map[types.ColorID]types.SN)
	have := make(map[types.ColorID]types.SN)
	for c, maxSN := range m.Max {
		mine := r.st.MaxSN(c)
		have[c] = mine
		if mine < maxSN {
			need[c] = mine
		}
	}
	if len(need) == 0 || m.UpToDate == r.cfg.ID {
		run.caughtUp = true
		run.lastDrive = time.Now()
		r.mu.Unlock()
		r.broadcastSyncDone(m.ID)
		return
	}
	run.fetching = true
	run.fetchTarget = m.UpToDate
	run.fetchHave = have
	run.lastDrive = time.Now()
	r.mu.Unlock()
	r.ep.Send(m.UpToDate, proto.SyncFetch{ID: m.ID, Have: have, From: r.cfg.ID})
}

func (r *Replica) onSyncFetch(from types.NodeID, m proto.SyncFetch) {
	// Serve missing committed records above the requester's frontier
	// ("the outdated replicas fetch the missing entries from the most
	// up-to-date one", §6.3).
	out := make(map[types.ColorID][]proto.WireRecord)
	for _, c := range r.topo.Colors() {
		after := m.Have[c]
		recs, err := r.st.ScanFrom(c, after)
		if err != nil || len(recs) == 0 {
			continue
		}
		wire := make([]proto.WireRecord, len(recs))
		for i, rec := range recs {
			wire[i] = proto.WireRecord{Token: rec.Token, SN: rec.SN, Data: rec.Data}
		}
		out[c] = wire
	}
	r.ep.Send(from, proto.SyncEntries{ID: m.ID, Records: out})
}

func (r *Replica) onSyncEntries(m proto.SyncEntries) {
	r.mu.Lock()
	run := r.syncRuns[m.ID]
	if run == nil || !run.fetching {
		r.mu.Unlock()
		return
	}
	run.fetching = false
	run.caughtUp = true
	r.mu.Unlock()
	// Ingest: persist + commit each record at its authoritative SN.
	// Tokens already present are just committed (idempotent). Records at
	// or below the local trim frontier are skipped — they were garbage-
	// collected by a trim that raced the fetch.
	for color, recs := range m.Records {
		frontier := r.st.Trimmed(color)
		for _, rec := range recs {
			if rec.SN.Valid() && rec.SN <= frontier {
				continue
			}
			if !r.st.Has(rec.Token) {
				if err := r.st.Put(color, rec.Token, rec.Data); err != nil {
					continue
				}
			}
			if err := r.st.Commit(rec.Token, rec.SN); err != nil && err != storage.ErrUnknownToken {
				continue
			}
			r.maxSeen.bump(color, rec.SN)
		}
	}
	r.broadcastSyncDone(m.ID)
}

// broadcastSyncDone performs this replica's half of the all-to-all barrier.
func (r *Replica) broadcastSyncDone(id uint64) {
	r.mu.Lock()
	run := r.syncRuns[id]
	if run == nil {
		r.mu.Unlock()
		return
	}
	run.dones[r.cfg.ID] = true
	run.lastDrive = time.Now()
	participants := append([]types.NodeID(nil), run.participants...)
	done := r.syncBarrierDoneLocked(run)
	r.mu.Unlock()
	for _, p := range participants {
		if p != r.cfg.ID {
			r.ep.Send(p, proto.SyncDone{ID: id, From: r.cfg.ID})
		}
	}
	if done {
		r.completeSync(id)
	}
}

func (r *Replica) onSyncDone(m proto.SyncDone) {
	r.mu.Lock()
	run := r.syncRuns[m.ID]
	if run == nil {
		r.mu.Unlock()
		return
	}
	run.dones[m.From] = true
	done := r.syncBarrierDoneLocked(run)
	r.mu.Unlock()
	if done {
		r.completeSync(m.ID)
	}
}

// syncBarrierDoneLocked reports whether every participant (including self)
// has broadcast SyncDone. Caller holds r.mu.
func (r *Replica) syncBarrierDoneLocked(run *syncRun) bool {
	for _, p := range run.participants {
		if !run.dones[p] {
			return false
		}
	}
	return true
}

// completeSync returns to operational mode and re-issues order requests for
// records without SNs ("replicas might still need to re-issue OReq requests
// for records that have not been assigned an SN after the sync-phase").
func (r *Replica) completeSync(id uint64) {
	r.mu.Lock()
	if r.syncRuns[id] == nil {
		r.mu.Unlock()
		return
	}
	delete(r.syncRuns, id)
	if len(r.syncRuns) == 0 {
		r.finishSyncLocked()
	}
	r.mu.Unlock()
}

// finishSyncLocked transitions to operational, acks a pending SeqInit, and
// re-drives uncommitted batches. Caller holds r.mu.
func (r *Replica) finishSyncLocked() {
	r.mode.store(ModeOperational)
	initSeq, initEpo := r.initSeq, r.initEpo
	r.initSeq, r.initEpo = 0, 0
	if initSeq != 0 {
		r.seqNode = initSeq
		if initEpo > r.epoch {
			r.epoch = initEpo
		}
	}
	id := r.cfg.ID
	ep := r.ep
	uncommitted := r.st.Uncommitted()
	for _, b := range uncommitted {
		if po := r.pending[b.Token]; po == nil {
			r.pending[b.Token] = &pendingOrder{
				color:    b.Color,
				nRecords: uint32(len(b.Records)),
				clients:  map[types.NodeID]bool{},
				sentAt:   time.Now(),
			}
		}
	}
	go func() {
		if initSeq != 0 {
			ep.Send(initSeq, proto.SeqInitAck{Epoch: initEpo, From: id})
		}
		for _, b := range uncommitted {
			r.sendOrderReq(b.Token, b.Color, uint32(len(b.Records)))
		}
	}()
}

// retrySyncRuns re-drives stalled sync-phases. Every sync message is
// fire-and-forget, so on lossy links any stage can be lost; each stage is
// therefore idempotent and re-driven from this replica's current state
// until the run's all-to-all barrier completes:
//
//   - a coordinator still collecting states re-broadcasts SyncRequest;
//   - a fetching replica re-sends its SyncFetch;
//   - a replica past catch-up re-broadcasts its SyncDone;
//   - a participant still waiting for the coordinator's round 2 re-sends
//     its SyncState (the coordinator re-broadcasts SyncCatchup when its
//     state set is already complete).
func (r *Replica) retrySyncRuns(now time.Time) {
	retry := r.cfg.RetryTimeout
	if retry <= 0 {
		return
	}
	type action struct {
		to  []types.NodeID
		msg transport.Message
	}
	var acts []action
	restart, aborted := false, false
	r.mu.Lock()
	for _, run := range r.syncRuns {
		if now.Sub(run.started) > syncAbortRetries*retry {
			// Wedged beyond repair (a peer crashed and lost the run's
			// state): abandon the run. A coordinator re-runs the whole
			// phase with a fresh id; a participant whose last run this was
			// resumes — it was consistent when the foreign run started.
			delete(r.syncRuns, run.id)
			r.stats.syncAborts.Add(1)
			aborted = true
			if run.coordinator == r.cfg.ID {
				restart = true
			}
			continue
		}
		if now.Sub(run.lastDrive) < retry {
			continue
		}
		run.lastDrive = now
		r.stats.syncRetries.Add(1)
		switch {
		case run.coordinator == r.cfg.ID && len(run.states) < len(run.participants):
			var missing []types.NodeID
			for _, p := range run.participants {
				if _, ok := run.states[p]; !ok {
					missing = append(missing, p)
				}
			}
			acts = append(acts, action{to: missing, msg: proto.SyncRequest{ID: run.id, From: r.cfg.ID}})
		case run.fetching:
			acts = append(acts, action{
				to:  []types.NodeID{run.fetchTarget},
				msg: proto.SyncFetch{ID: run.id, Have: run.fetchHave, From: r.cfg.ID},
			})
		case run.caughtUp:
			var peers []types.NodeID
			for _, p := range run.participants {
				if p != r.cfg.ID && !run.dones[p] {
					peers = append(peers, p)
				}
			}
			acts = append(acts, action{to: peers, msg: proto.SyncDone{ID: run.id, From: r.cfg.ID}})
		default:
			// Waiting for SyncCatchup: nudge the coordinator with our state.
			state := proto.SyncState{ID: run.id, Epoch: r.epoch, MaxSNs: r.maxSNsLocked(), Trimmed: r.maxTrimsLocked(), From: r.cfg.ID}
			acts = append(acts, action{to: []types.NodeID{run.coordinator}, msg: state})
		}
	}
	// Only the abort path may finish here: Recover stores ModeSyncing just
	// before startSyncPhase inserts its run, so an unconditional
	// empty-map finish could race that window and serve un-synced state.
	if aborted && len(r.syncRuns) == 0 && !restart && r.mode.load() == ModeSyncing {
		r.finishSyncLocked()
	}
	r.mu.Unlock()
	if restart {
		r.startSyncPhase()
	}
	for _, a := range acts {
		for _, to := range a.to {
			r.ep.Send(to, a.msg)
		}
	}
}

// onSeqInit handles a new sequencer's initialization request (§6.3
// "Sequencer failures"): record the new leader, run a sync-phase with the
// shard, and ack only once the shard is synchronized to the previous epoch.
func (r *Replica) onSeqInit(m proto.SeqInit) {
	r.mu.Lock()
	if m.Epoch < r.epoch {
		r.mu.Unlock()
		return // stale leader
	}
	r.initSeq = m.From
	r.initEpo = m.Epoch
	alreadySyncing := len(r.syncRuns) > 0
	coordinator := r.syncCoordinator()
	r.mu.Unlock()
	if alreadySyncing {
		return // the running sync-phase will ack on completion
	}
	if coordinator == r.cfg.ID {
		r.startSyncPhase()
	}
	// Non-coordinators wait for the coordinator's SyncRequest; if the
	// coordinator's SeqInit was lost, the retry path (sequencer re-sending
	// SeqInit) re-triggers this handler.
}

// syncCoordinator picks the deterministic sync-phase initiator for
// sequencer-failover syncs: the smallest replica id of the shard.
func (r *Replica) syncCoordinator() types.NodeID {
	sh, err := r.topo.Shard(r.cfg.Shard)
	if err != nil || len(sh.Replicas) == 0 {
		return r.cfg.ID
	}
	min := sh.Replicas[0]
	for _, id := range sh.Replicas[1:] {
		if id < min {
			min = id
		}
	}
	return min
}
