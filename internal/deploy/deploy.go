// Package deploy loads the JSON cluster manifest used by the TCP
// deployment binaries (cmd/flexlog-server, cmd/flexlog-cli): node
// addresses, the region (color) tree with each region's sequencer group,
// and the shard layout.
package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"flexlog/internal/proto"
	"flexlog/internal/qos"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Manifest describes a FlexLog deployment.
type Manifest struct {
	// Nodes maps node id -> "host:port".
	Nodes map[types.NodeID]string `json:"nodes"`
	// Regions declare the color tree; the first entry must be the master
	// region (its Parent is ignored).
	Regions []RegionSpec `json:"regions"`
	// Shards attach replica groups to leaf colors.
	Shards []ShardSpec `json:"shards"`
	// Tenants declare the deployment's QoS envelopes (optional; an empty
	// list runs the cluster without admission control or weighted-fair
	// lanes, the pre-QoS behavior).
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Spares declare replica processes that run configured for a shard but
	// OUTSIDE its membership: clients never address them, and they serve
	// nothing until a `flexlog-cli reconfig add-replica` catches them up
	// and the widened membership is pushed (OPERATIONS.md runbook).
	Spares []SpareSpec `json:"spares,omitempty"`
}

// SpareSpec is one standby replica: a node with an address and a target
// shard, deliberately absent from that shard's replica list.
type SpareSpec struct {
	ID    types.NodeID  `json:"id"`
	Shard types.ShardID `json:"shard"`
}

// TenantSpec is one tenant's QoS declaration.
type TenantSpec struct {
	// ID is the tenant identity clients carry via core.WithTenant. Tenant
	// 0 is the default tenant: it may be declared to give it an explicit
	// weight, but it can never be rate-limited.
	ID types.TenantID `json:"id"`
	// Weight is the tenant's weighted-fair share of replica lane service
	// (0 means 1).
	Weight uint32 `json:"weight,omitempty"`
	// Rate caps admitted append throughput in records/second (0 =
	// unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the admission token-bucket depth in records (0 = one
	// second of Rate).
	Burst float64 `json:"burst,omitempty"`
	// Colors lists regions owned by this tenant, used to attribute
	// ordering-layer accounting (optional).
	Colors []types.ColorID `json:"colors,omitempty"`
}

// RegionSpec is one color and its sequencer group.
type RegionSpec struct {
	Color   types.ColorID  `json:"color"`
	Parent  types.ColorID  `json:"parent"`
	Leader  types.NodeID   `json:"leader"`
	Backups []types.NodeID `json:"backups,omitempty"`
}

// ShardSpec is one replica group.
type ShardSpec struct {
	ID       types.ShardID  `json:"id"`
	Leaf     types.ColorID  `json:"leaf"`
	Replicas []types.NodeID `json:"replicas"`
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// Parse validates a manifest from raw JSON.
func Parse(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("deploy: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if len(m.Regions) == 0 {
		return fmt.Errorf("deploy: no regions declared")
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("deploy: no node addresses declared")
	}
	known := func(id types.NodeID) error {
		if _, ok := m.Nodes[id]; !ok {
			return fmt.Errorf("deploy: node %v has no address", id)
		}
		return nil
	}
	colors := make(map[types.ColorID]bool)
	for i, r := range m.Regions {
		if colors[r.Color] {
			return fmt.Errorf("deploy: duplicate region %v", r.Color)
		}
		if i > 0 && !colors[r.Parent] {
			return fmt.Errorf("deploy: region %v references undeclared parent %v (parents must be declared first)", r.Color, r.Parent)
		}
		colors[r.Color] = true
		if err := known(r.Leader); err != nil {
			return err
		}
		for _, b := range r.Backups {
			if err := known(b); err != nil {
				return err
			}
		}
	}
	shardIDs := make(map[types.ShardID]bool)
	for _, s := range m.Shards {
		if shardIDs[s.ID] {
			return fmt.Errorf("deploy: duplicate shard %v", s.ID)
		}
		shardIDs[s.ID] = true
		if !colors[s.Leaf] {
			return fmt.Errorf("deploy: shard %v references undeclared color %v", s.ID, s.Leaf)
		}
		if len(s.Replicas) == 0 {
			return fmt.Errorf("deploy: shard %v has no replicas", s.ID)
		}
		for _, r := range s.Replicas {
			if err := known(r); err != nil {
				return err
			}
		}
	}
	spares := make(map[types.NodeID]bool)
	for _, sp := range m.Spares {
		if err := known(sp.ID); err != nil {
			return err
		}
		if !shardIDs[sp.Shard] {
			return fmt.Errorf("deploy: spare %v references undeclared shard %v", sp.ID, sp.Shard)
		}
		if spares[sp.ID] {
			return fmt.Errorf("deploy: duplicate spare %v", sp.ID)
		}
		spares[sp.ID] = true
		for _, s := range m.Shards {
			for _, r := range s.Replicas {
				if r == sp.ID {
					return fmt.Errorf("deploy: spare %v is already a member of shard %v — a spare must start outside the membership", sp.ID, s.ID)
				}
			}
		}
	}
	tenants := make(map[types.TenantID]bool)
	for _, t := range m.Tenants {
		if tenants[t.ID] {
			return fmt.Errorf("deploy: duplicate tenant %v", t.ID)
		}
		tenants[t.ID] = true
		if t.ID == types.DefaultTenant && t.Rate > 0 {
			return fmt.Errorf("deploy: the default tenant cannot be rate-limited")
		}
		if t.Rate < 0 || t.Burst < 0 {
			return fmt.Errorf("deploy: tenant %v declares a negative rate or burst", t.ID)
		}
		for _, c := range t.Colors {
			if !colors[c] {
				return fmt.Errorf("deploy: tenant %v claims undeclared color %v", t.ID, c)
			}
		}
	}
	return nil
}

// TenantConfigs materializes the tenant declarations for the replica and
// cluster constructors (nil when the manifest declares none).
func (m *Manifest) TenantConfigs() []qos.TenantConfig {
	if len(m.Tenants) == 0 {
		return nil
	}
	out := make([]qos.TenantConfig, len(m.Tenants))
	for i, t := range m.Tenants {
		out[i] = qos.TenantConfig{ID: t.ID, Weight: t.Weight, Rate: t.Rate, Burst: t.Burst, Colors: t.Colors}
	}
	return out
}

// Topology materializes the manifest's layout.
func (m *Manifest) Topology() (*topology.Topology, error) {
	topo := topology.New()
	for _, r := range m.Regions {
		if err := topo.AddRegion(r.Color, r.Parent, r.Leader, r.Backups); err != nil {
			return nil, err
		}
	}
	for _, s := range m.Shards {
		if err := topo.AddShard(s.ID, s.Leaf, s.Replicas); err != nil {
			return nil, err
		}
	}
	return topo, nil
}

// AddressBook materializes the node address map.
func (m *Manifest) AddressBook() *transport.AddressBook {
	addrs := make(map[types.NodeID]string, len(m.Nodes))
	for id, a := range m.Nodes {
		addrs[id] = a
	}
	return transport.NewAddressBook(addrs)
}

// Role describes what a node id does in the manifest.
type Role struct {
	Kind   string // "replica", "sequencer", or "unknown"
	Shard  types.ShardID
	Region types.ColorID
}

// RoleOf resolves a node id's role. A spare resolves to "replica" for its
// target shard — the process runs identically; only the topology's
// membership (which it is not in) distinguishes it until promotion.
func (m *Manifest) RoleOf(id types.NodeID) Role {
	for _, s := range m.Shards {
		for _, r := range s.Replicas {
			if r == id {
				return Role{Kind: "replica", Shard: s.ID}
			}
		}
	}
	for _, sp := range m.Spares {
		if sp.ID == id {
			return Role{Kind: "replica", Shard: sp.Shard}
		}
	}
	for _, r := range m.Regions {
		if r.Leader == id {
			return Role{Kind: "sequencer", Region: r.Color}
		}
		for _, b := range r.Backups {
			if b == id {
				return Role{Kind: "sequencer", Region: r.Color}
			}
		}
	}
	return Role{Kind: "unknown"}
}

// NodeIDs returns every node id in the manifest, sorted.
func (m *Manifest) NodeIDs() []types.NodeID {
	ids := make([]types.NodeID, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RegisterWire registers every protocol message for gob (TCP transport).
func RegisterWire() { proto.RegisterGob() }

// Example returns a ready-to-edit single-host manifest: one master region
// with a 3-sequencer group and one shard of three replicas.
func Example() *Manifest {
	return &Manifest{
		Nodes: map[types.NodeID]string{
			1:   "127.0.0.1:7101",
			2:   "127.0.0.1:7102",
			3:   "127.0.0.1:7103",
			4:   "127.0.0.1:7104",
			900: "127.0.0.1:7900",
			901: "127.0.0.1:7901",
			902: "127.0.0.1:7902",
			500: "127.0.0.1:7500",
			501: "127.0.0.1:7501",
			502: "127.0.0.1:7502",
		},
		Regions: []RegionSpec{
			{Color: 0, Leader: 900, Backups: []types.NodeID{901, 902}},
		},
		Shards: []ShardSpec{
			{ID: 1, Leaf: 0, Replicas: []types.NodeID{1, 2, 3}},
		},
		Tenants: []TenantSpec{
			{ID: 1, Weight: 3},
			{ID: 2, Weight: 1, Rate: 50_000, Burst: 10_000},
		},
		// Node 4 is a standby for shard 1: it runs but serves nothing
		// until `flexlog-cli reconfig add-replica` promotes it (see the
		// OPERATIONS.md reconfiguration runbook).
		Spares: []SpareSpec{
			{ID: 4, Shard: 1},
		},
	}
}
