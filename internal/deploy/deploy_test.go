package deploy

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flexlog/internal/types"
)

func TestExampleValidates(t *testing.T) {
	m := Example()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	topo, err := m.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := topo.Leader(0); l != 900 {
		t.Fatalf("leader = %v", l)
	}
	book := m.AddressBook()
	if a, ok := book.Lookup(1); !ok || a == "" {
		t.Fatal("address book missing node 1")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	m := Example()
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(m.Nodes) || len(got.Shards) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("bad json should error")
	}
}

func TestValidationRejects(t *testing.T) {
	cases := map[string]func(*Manifest){
		"no regions":       func(m *Manifest) { m.Regions = nil },
		"no nodes":         func(m *Manifest) { m.Nodes = nil },
		"unknown leader":   func(m *Manifest) { m.Regions[0].Leader = 999 },
		"unknown backup":   func(m *Manifest) { m.Regions[0].Backups = []types.NodeID{999} },
		"unknown replica":  func(m *Manifest) { m.Shards[0].Replicas = []types.NodeID{999} },
		"empty shard":      func(m *Manifest) { m.Shards[0].Replicas = nil },
		"unknown leaf":     func(m *Manifest) { m.Shards[0].Leaf = 42 },
		"duplicate region": func(m *Manifest) { m.Regions = append(m.Regions, m.Regions[0]) },
		"duplicate shard":  func(m *Manifest) { m.Shards = append(m.Shards, m.Shards[0]) },
		"orphan parent": func(m *Manifest) {
			m.Regions = append(m.Regions, RegionSpec{Color: 5, Parent: 42, Leader: 900})
		},
		"unknown spare":        func(m *Manifest) { m.Spares = []SpareSpec{{ID: 999, Shard: 1}} },
		"spare orphan shard":   func(m *Manifest) { m.Spares = []SpareSpec{{ID: 4, Shard: 42}} },
		"duplicate spare":      func(m *Manifest) { m.Spares = []SpareSpec{{ID: 4, Shard: 1}, {ID: 4, Shard: 1}} },
		"spare already member": func(m *Manifest) { m.Spares = []SpareSpec{{ID: 1, Shard: 1}} },
	}
	for name, mutate := range cases {
		m := Example()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestRoleOf(t *testing.T) {
	m := Example()
	if r := m.RoleOf(1); r.Kind != "replica" || r.Shard != 1 {
		t.Fatalf("role of 1 = %+v", r)
	}
	if r := m.RoleOf(901); r.Kind != "sequencer" || r.Region != 0 {
		t.Fatalf("role of 901 = %+v", r)
	}
	if r := m.RoleOf(900); r.Kind != "sequencer" {
		t.Fatalf("role of 900 = %+v", r)
	}
	if r := m.RoleOf(12345); r.Kind != "unknown" {
		t.Fatalf("role of 12345 = %+v", r)
	}
	// The example's spare runs as a replica for its target shard, but the
	// topology must NOT list it as a member until it is promoted.
	if r := m.RoleOf(4); r.Kind != "replica" || r.Shard != 1 {
		t.Fatalf("role of spare 4 = %+v", r)
	}
	topo, err := m.Topology()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := topo.Shard(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sh.Replicas {
		if id == 4 {
			t.Fatal("spare 4 leaked into shard 1's membership")
		}
	}
}

func TestNodeIDsSorted(t *testing.T) {
	ids := Example().NodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not sorted")
		}
	}
}
