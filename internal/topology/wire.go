package topology

import (
	"flexlog/internal/proto"
	"flexlog/internal/types"
)

// This file bridges topology snapshots and their wire form
// (proto.TopoUpdate): the control plane broadcasts versioned snapshots to
// every node after a mutation, and receivers adopt them through the same
// fencing rule as Apply — strictly newer versions win, everything else is
// dropped. proto stays free of topology imports (it is below everything on
// the dependency graph), so the conversion lives here.

// WireSnapshot encodes the current layout as a broadcastable TopoUpdate
// stamped with the given sender.
func (t *Topology) WireSnapshot(from types.NodeID) proto.TopoUpdate {
	return SnapshotToWire(t.Snapshot(), from)
}

// SnapshotToWire converts a snapshot to its wire form.
func SnapshotToWire(s Snapshot, from types.NodeID) proto.TopoUpdate {
	m := proto.TopoUpdate{Version: s.Version, From: from}
	for _, si := range s.Regions {
		m.Regions = append(m.Regions, proto.TopoRegion{
			Color:   si.Region,
			Parent:  si.Parent,
			Leader:  si.Leader,
			Backups: si.Backups,
			Members: si.Members,
			IsRoot:  si.IsRoot,
		})
	}
	for _, sh := range s.Shards {
		m.Shards = append(m.Shards, proto.TopoShard{ID: sh.ID, Leaf: sh.Leaf, Replicas: sh.Replicas})
	}
	return m
}

// SnapshotFromWire converts a TopoUpdate back to a snapshot.
func SnapshotFromWire(m proto.TopoUpdate) Snapshot {
	s := Snapshot{Version: m.Version}
	for _, rg := range m.Regions {
		s.Regions = append(s.Regions, SequencerInfo{
			Region:  rg.Color,
			Parent:  rg.Parent,
			Leader:  rg.Leader,
			Backups: rg.Backups,
			Members: rg.Members,
			IsRoot:  rg.IsRoot,
		})
	}
	for _, sh := range m.Shards {
		s.Shards = append(s.Shards, ShardInfo{ID: sh.ID, Leaf: sh.Leaf, Replicas: sh.Replicas})
	}
	return s
}

// ApplyWire adopts a received TopoUpdate if it is strictly newer than the
// local layout; it reports whether the update was applied.
func (t *Topology) ApplyWire(m proto.TopoUpdate) bool {
	return t.Apply(SnapshotFromWire(m))
}
