// Package topology models FlexLog's deployment layout (§4): the color
// (region) tree, the sequencer owning each region with its backups, and the
// shards attached to leaf regions. It answers the routing questions every
// protocol needs — which sequencer orders a color, which shards store it,
// which replicas form a shard — and supports dynamic AddColor (Table 2).
//
// A single Topology value is shared by all in-process nodes (it plays the
// role of the deployment configuration every node of the original system is
// started with); leader changes after sequencer failover are published here
// by the elected sequencer.
package topology

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"flexlog/internal/types"
)

var (
	// ErrUnknownColor is returned for colors that were never added.
	ErrUnknownColor = errors.New("topology: unknown color")
	// ErrDuplicate is returned when re-adding an existing color or shard.
	ErrDuplicate = errors.New("topology: duplicate")
)

// SequencerInfo describes the sequencer group owning one region.
type SequencerInfo struct {
	Region  types.ColorID
	Leader  types.NodeID   // current leader (changes on failover)
	Backups []types.NodeID // 2f backup nodes (§5.2)
	Members []types.NodeID // stable group: initial leader ∪ backups
	Parent  types.ColorID  // parent region; meaningless for the root
	IsRoot  bool
}

// ShardInfo describes one replica group and the leaf region it serves.
type ShardInfo struct {
	ID       types.ShardID
	Leaf     types.ColorID // the leaf region whose sequencer the shard uses
	Replicas []types.NodeID
}

// Topology is the shared cluster layout. All methods are safe for
// concurrent use.
type Topology struct {
	mu      sync.RWMutex
	version uint64
	seqs    map[types.ColorID]*SequencerInfo
	shards  map[types.ShardID]*ShardInfo
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		seqs:   make(map[types.ColorID]*SequencerInfo),
		shards: make(map[types.ShardID]*ShardInfo),
	}
}

// AddRegion declares a color and the sequencer group that owns it. The
// first region added must be the root (master region); all others name an
// existing parent.
func (t *Topology) AddRegion(color types.ColorID, parent types.ColorID, leader types.NodeID, backups []types.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.seqs[color]; dup {
		return fmt.Errorf("%w: region %v", ErrDuplicate, color)
	}
	isRoot := len(t.seqs) == 0
	if !isRoot {
		if _, ok := t.seqs[parent]; !ok {
			return fmt.Errorf("%w: parent %v of %v", ErrUnknownColor, parent, color)
		}
		if parent == color {
			return fmt.Errorf("topology: region %v cannot parent itself", color)
		}
	}
	members := make([]types.NodeID, 0, len(backups)+1)
	members = append(members, leader)
	for _, b := range backups {
		if b != leader {
			members = append(members, b)
		}
	}
	t.seqs[color] = &SequencerInfo{
		Region:  color,
		Leader:  leader,
		Backups: append([]types.NodeID(nil), backups...),
		Members: members,
		Parent:  parent,
		IsRoot:  isRoot,
	}
	t.version++
	return nil
}

// AddShard attaches a replica group to a leaf region.
func (t *Topology) AddShard(id types.ShardID, leaf types.ColorID, replicas []types.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.shards[id]; dup {
		return fmt.Errorf("%w: shard %v", ErrDuplicate, id)
	}
	if _, ok := t.seqs[leaf]; !ok {
		return fmt.Errorf("%w: leaf %v for shard %v", ErrUnknownColor, leaf, id)
	}
	t.shards[id] = &ShardInfo{
		ID:       id,
		Leaf:     leaf,
		Replicas: append([]types.NodeID(nil), replicas...),
	}
	t.version++
	return nil
}

// Sequencer returns the sequencer group of a region.
func (t *Topology) Sequencer(color types.ColorID) (SequencerInfo, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	si, ok := t.seqs[color]
	if !ok {
		return SequencerInfo{}, fmt.Errorf("%w: %v", ErrUnknownColor, color)
	}
	return *si, nil
}

// Leader returns the current leader node of a region's sequencer group.
func (t *Topology) Leader(color types.ColorID) (types.NodeID, error) {
	si, err := t.Sequencer(color)
	if err != nil {
		return 0, err
	}
	return si.Leader, nil
}

// SetLeader publishes a leadership change after failover.
func (t *Topology) SetLeader(color types.ColorID, leader types.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	si, ok := t.seqs[color]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownColor, color)
	}
	si.Leader = leader
	t.version++
	return nil
}

// Parent returns the parent region of a color, and false for the root.
func (t *Topology) Parent(color types.ColorID) (types.ColorID, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	si, ok := t.seqs[color]
	if !ok {
		return 0, false, fmt.Errorf("%w: %v", ErrUnknownColor, color)
	}
	return si.Parent, !si.IsRoot, nil
}

// HasColor reports whether the color exists.
func (t *Topology) HasColor(color types.ColorID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.seqs[color]
	return ok
}

// Colors returns all declared colors, sorted.
func (t *Topology) Colors() []types.ColorID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]types.ColorID, 0, len(t.seqs))
	for c := range t.seqs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InRegion reports whether color `c` lies inside the region rooted at
// `region` (i.e. region is c or an ancestor of c).
func (t *Topology) InRegion(region, c types.ColorID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.inRegionLocked(region, c)
}

func (t *Topology) inRegionLocked(region, c types.ColorID) bool {
	for {
		if c == region {
			return true
		}
		si, ok := t.seqs[c]
		if !ok || si.IsRoot {
			return false
		}
		c = si.Parent
	}
}

// ShardsInRegion returns the shards whose leaf region lies inside the
// region rooted at color (§4: "a shard is allocated to the region of its
// leaf-sequencer and all its super-regions"). The result is sorted by id.
func (t *Topology) ShardsInRegion(color types.ColorID) []ShardInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []ShardInfo
	for _, sh := range t.shards {
		if t.inRegionLocked(color, sh.Leaf) {
			out = append(out, *sh)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RandomShard picks a uniformly random shard of the region (Alg. 1: the
// client broadcasts "to all replicas in a (random) shard of c").
func (t *Topology) RandomShard(color types.ColorID, rng *rand.Rand) (ShardInfo, error) {
	shards := t.ShardsInRegion(color)
	if len(shards) == 0 {
		return ShardInfo{}, fmt.Errorf("topology: no shards in region %v", color)
	}
	return shards[rng.Intn(len(shards))], nil
}

// Shard returns a shard by id.
func (t *Topology) Shard(id types.ShardID) (ShardInfo, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sh, ok := t.shards[id]
	if !ok {
		return ShardInfo{}, fmt.Errorf("topology: unknown shard %v", id)
	}
	return *sh, nil
}

// ShardOfReplica returns the shard a replica belongs to.
func (t *Topology) ShardOfReplica(id types.NodeID) (ShardInfo, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, sh := range t.shards {
		for _, r := range sh.Replicas {
			if r == id {
				return *sh, true
			}
		}
	}
	return ShardInfo{}, false
}

// ReplicasInRegion returns every replica of every shard inside the region
// (the set a new sequencer must initialize, §5.2). Sorted and de-duplicated.
func (t *Topology) ReplicasInRegion(color types.ColorID) []types.NodeID {
	shards := t.ShardsInRegion(color)
	seen := make(map[types.NodeID]bool)
	var out []types.NodeID
	for _, sh := range shards {
		for _, r := range sh.Replicas {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns the colors that have at least one shard attached, sorted.
func (t *Topology) Leaves() []types.ColorID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[types.ColorID]bool)
	var out []types.ColorID
	for _, sh := range t.shards {
		if !seen[sh.Leaf] {
			seen[sh.Leaf] = true
			out = append(out, sh.Leaf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathToOwner returns the chain of regions from `from` (exclusive) up to
// the region `target`, used to validate that an order request can reach its
// owner by walking parents.
func (t *Topology) PathToOwner(from, target types.ColorID) ([]types.ColorID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var path []types.ColorID
	c := from
	for c != target {
		si, ok := t.seqs[c]
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrUnknownColor, c)
		}
		if si.IsRoot {
			return nil, fmt.Errorf("topology: region %v is not an ancestor of %v", target, from)
		}
		c = si.Parent
		path = append(path, c)
	}
	return path, nil
}

// ErrLastReplica is returned when a removal would leave a shard empty.
var ErrLastReplica = errors.New("topology: cannot remove the last replica of a shard")

// Version returns the fencing epoch of the layout: a monotonic counter
// bumped by every mutation (region/shard/replica membership and leader
// changes). Reconfiguration messages carry it so stale snapshots can be
// rejected, and clients compare it to decide when to re-resolve routes.
func (t *Topology) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// AddReplicaToShard promotes a caught-up replica into a shard's read/write
// set. From this point appends broadcast to it and reads may consult it.
func (t *Topology) AddReplicaToShard(id types.ShardID, node types.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sh, ok := t.shards[id]
	if !ok {
		return fmt.Errorf("topology: unknown shard %v", id)
	}
	for _, r := range sh.Replicas {
		if r == node {
			return fmt.Errorf("%w: replica %v in shard %v", ErrDuplicate, node, id)
		}
	}
	sh.Replicas = append(sh.Replicas, node)
	t.version++
	return nil
}

// RemoveReplicaFromShard drops a replica from a shard's read/write set
// (drain cutover). The shard must keep at least one replica.
func (t *Topology) RemoveReplicaFromShard(id types.ShardID, node types.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sh, ok := t.shards[id]
	if !ok {
		return fmt.Errorf("topology: unknown shard %v", id)
	}
	for i, r := range sh.Replicas {
		if r != node {
			continue
		}
		if len(sh.Replicas) == 1 {
			return fmt.Errorf("%w: shard %v", ErrLastReplica, id)
		}
		sh.Replicas = append(sh.Replicas[:i:i], sh.Replicas[i+1:]...)
		t.version++
		return nil
	}
	return fmt.Errorf("topology: replica %v not in shard %v", node, id)
}

// RemoveShard detaches a shard from the layout (merge cutover: its records
// must already have been migrated into the surviving shard of the leaf).
func (t *Topology) RemoveShard(id types.ShardID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.shards[id]; !ok {
		return fmt.Errorf("topology: unknown shard %v", id)
	}
	delete(t.shards, id)
	t.version++
	return nil
}

// Snapshot is a versioned copy of the full layout, used to propagate
// reconfigurations to remote nodes (proto.TopoUpdate) and to render
// /debug/topology. Regions and Shards are sorted for determinism.
type Snapshot struct {
	Version uint64
	Regions []SequencerInfo
	Shards  []ShardInfo
}

// Snapshot returns a deep, versioned copy of the layout.
func (t *Topology) Snapshot() Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Snapshot{Version: t.version}
	for _, si := range t.seqs {
		cp := *si
		cp.Backups = append([]types.NodeID(nil), si.Backups...)
		cp.Members = append([]types.NodeID(nil), si.Members...)
		s.Regions = append(s.Regions, cp)
	}
	for _, sh := range t.shards {
		cp := *sh
		cp.Replicas = append([]types.NodeID(nil), sh.Replicas...)
		s.Shards = append(s.Shards, cp)
	}
	sort.Slice(s.Regions, func(i, j int) bool { return s.Regions[i].Region < s.Regions[j].Region })
	sort.Slice(s.Shards, func(i, j int) bool { return s.Shards[i].ID < s.Shards[j].ID })
	return s
}

// Apply installs a snapshot if (and only if) it is newer than the local
// layout — the epoch fence for reconfiguration broadcasts. It returns true
// when the snapshot was applied and false when it was stale or equal (a
// duplicate or out-of-order TopoUpdate), which callers treat as a no-op.
func (t *Topology) Apply(s Snapshot) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.Version <= t.version {
		return false
	}
	seqs := make(map[types.ColorID]*SequencerInfo, len(s.Regions))
	for i := range s.Regions {
		cp := s.Regions[i]
		cp.Backups = append([]types.NodeID(nil), cp.Backups...)
		cp.Members = append([]types.NodeID(nil), cp.Members...)
		seqs[cp.Region] = &cp
	}
	shards := make(map[types.ShardID]*ShardInfo, len(s.Shards))
	for i := range s.Shards {
		cp := s.Shards[i]
		cp.Replicas = append([]types.NodeID(nil), cp.Replicas...)
		shards[cp.ID] = &cp
	}
	t.seqs = seqs
	t.shards = shards
	t.version = s.Version
	return true
}
