package topology

import (
	"errors"
	"math/rand"
	"testing"

	"flexlog/internal/types"
)

// buildTree creates the paper's Figure 2 layout:
//
//	color 0 (root, Seq#0)
//	├── color 1 (Seq#1) — shard 1, shard 2
//	└── color 2 (Seq#2) — shard 3
func buildTree(t *testing.T) *Topology {
	t.Helper()
	topo := New()
	if err := topo.AddRegion(0, 0, 100, []types.NodeID{101, 102}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddRegion(1, 0, 110, []types.NodeID{111, 112}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddRegion(2, 0, 120, []types.NodeID{121, 122}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddShard(1, 1, []types.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddShard(2, 1, []types.NodeID{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddShard(3, 2, []types.NodeID{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestAddRegionValidation(t *testing.T) {
	topo := New()
	if err := topo.AddRegion(0, 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddRegion(0, 0, 1, nil); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate region: %v", err)
	}
	if err := topo.AddRegion(5, 9, 1, nil); !errors.Is(err, ErrUnknownColor) {
		t.Errorf("unknown parent: %v", err)
	}
	if err := topo.AddRegion(5, 5, 1, nil); err == nil {
		t.Error("self-parent should be rejected")
	}
}

func TestAddShardValidation(t *testing.T) {
	topo := buildTree(t)
	if err := topo.AddShard(1, 1, nil); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate shard: %v", err)
	}
	if err := topo.AddShard(9, 42, nil); !errors.Is(err, ErrUnknownColor) {
		t.Errorf("unknown leaf: %v", err)
	}
}

func TestSequencerAndLeader(t *testing.T) {
	topo := buildTree(t)
	si, err := topo.Sequencer(1)
	if err != nil || si.Leader != 110 || len(si.Backups) != 2 {
		t.Fatalf("sequencer(1) = %+v, %v", si, err)
	}
	if _, err := topo.Sequencer(42); !errors.Is(err, ErrUnknownColor) {
		t.Fatalf("unknown sequencer: %v", err)
	}
	if err := topo.SetLeader(1, 111); err != nil {
		t.Fatal(err)
	}
	if l, _ := topo.Leader(1); l != 111 {
		t.Fatalf("leader after SetLeader = %v", l)
	}
	if err := topo.SetLeader(42, 1); err == nil {
		t.Fatal("SetLeader on unknown color should fail")
	}
	if _, err := topo.Leader(42); err == nil {
		t.Fatal("Leader of unknown color should fail")
	}
}

func TestParentAndRoot(t *testing.T) {
	topo := buildTree(t)
	p, has, err := topo.Parent(1)
	if err != nil || !has || p != 0 {
		t.Fatalf("parent(1) = %v, %v, %v", p, has, err)
	}
	_, has, err = topo.Parent(0)
	if err != nil || has {
		t.Fatalf("root should have no parent: %v, %v", has, err)
	}
	if _, _, err := topo.Parent(42); err == nil {
		t.Fatal("unknown color parent should fail")
	}
}

func TestInRegion(t *testing.T) {
	topo := buildTree(t)
	cases := []struct {
		region, c types.ColorID
		want      bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, true},
		{1, 1, true}, {1, 2, false}, {2, 1, false},
		{1, 0, false}, // parent is not inside the child region
	}
	for _, tc := range cases {
		if got := topo.InRegion(tc.region, tc.c); got != tc.want {
			t.Errorf("InRegion(%v, %v) = %v, want %v", tc.region, tc.c, got, tc.want)
		}
	}
}

func TestShardsInRegion(t *testing.T) {
	topo := buildTree(t)
	if got := topo.ShardsInRegion(0); len(got) != 3 {
		t.Fatalf("root region shards = %d", len(got))
	}
	got := topo.ShardsInRegion(1)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("region 1 shards = %v", got)
	}
	if got := topo.ShardsInRegion(2); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("region 2 shards = %v", got)
	}
}

func TestRandomShardCoversAll(t *testing.T) {
	topo := buildTree(t)
	rng := rand.New(rand.NewSource(1))
	seen := map[types.ShardID]bool{}
	for i := 0; i < 200; i++ {
		sh, err := topo.RandomShard(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[sh.ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random shard only hit %v", seen)
	}
	topo2 := New()
	topo2.AddRegion(0, 0, 1, nil)
	if _, err := topo2.RandomShard(0, rng); err == nil {
		t.Fatal("no shards should error")
	}
}

func TestShardLookups(t *testing.T) {
	topo := buildTree(t)
	sh, err := topo.Shard(2)
	if err != nil || sh.Leaf != 1 {
		t.Fatalf("shard(2) = %+v, %v", sh, err)
	}
	if _, err := topo.Shard(99); err == nil {
		t.Fatal("unknown shard should fail")
	}
	sh, ok := topo.ShardOfReplica(5)
	if !ok || sh.ID != 2 {
		t.Fatalf("shardOfReplica(5) = %+v, %v", sh, ok)
	}
	if _, ok := topo.ShardOfReplica(999); ok {
		t.Fatal("unknown replica should report !ok")
	}
}

func TestReplicasInRegion(t *testing.T) {
	topo := buildTree(t)
	all := topo.ReplicasInRegion(0)
	if len(all) != 9 {
		t.Fatalf("root replicas = %v", all)
	}
	r1 := topo.ReplicasInRegion(1)
	if len(r1) != 6 || r1[0] != 1 || r1[5] != 6 {
		t.Fatalf("region 1 replicas = %v", r1)
	}
}

func TestLeavesAndColors(t *testing.T) {
	topo := buildTree(t)
	leaves := topo.Leaves()
	if len(leaves) != 2 || leaves[0] != 1 || leaves[1] != 2 {
		t.Fatalf("leaves = %v", leaves)
	}
	colors := topo.Colors()
	if len(colors) != 3 || colors[0] != 0 {
		t.Fatalf("colors = %v", colors)
	}
	if !topo.HasColor(2) || topo.HasColor(9) {
		t.Fatal("HasColor wrong")
	}
}

func TestPathToOwner(t *testing.T) {
	topo := buildTree(t)
	path, err := topo.PathToOwner(1, 0)
	if err != nil || len(path) != 1 || path[0] != 0 {
		t.Fatalf("path 1→0 = %v, %v", path, err)
	}
	path, err = topo.PathToOwner(1, 1)
	if err != nil || len(path) != 0 {
		t.Fatalf("path 1→1 = %v, %v", path, err)
	}
	if _, err := topo.PathToOwner(1, 2); err == nil {
		t.Fatal("path to non-ancestor should fail")
	}
}

func TestReplicaMembershipMutators(t *testing.T) {
	topo := buildTree(t)
	v0 := topo.Version()
	if err := topo.AddReplicaToShard(1, 42); err != nil {
		t.Fatal(err)
	}
	sh, _ := topo.Shard(1)
	if len(sh.Replicas) != 4 || sh.Replicas[3] != 42 {
		t.Fatalf("after add, replicas = %v", sh.Replicas)
	}
	if topo.Version() != v0+1 {
		t.Fatalf("version after add = %d, want %d", topo.Version(), v0+1)
	}
	if err := topo.AddReplicaToShard(1, 42); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := topo.AddReplicaToShard(99, 1); err == nil {
		t.Fatal("add to unknown shard should fail")
	}
	if err := topo.RemoveReplicaFromShard(1, 42); err != nil {
		t.Fatal(err)
	}
	sh, _ = topo.Shard(1)
	if len(sh.Replicas) != 3 {
		t.Fatalf("after remove, replicas = %v", sh.Replicas)
	}
	if err := topo.RemoveReplicaFromShard(1, 42); err == nil {
		t.Fatal("removing a non-member should fail")
	}
	if err := topo.RemoveReplicaFromShard(99, 1); err == nil {
		t.Fatal("remove from unknown shard should fail")
	}
	topo.AddShard(9, 1, []types.NodeID{77})
	if err := topo.RemoveReplicaFromShard(9, 77); !errors.Is(err, ErrLastReplica) {
		t.Fatalf("last-replica removal: %v", err)
	}
}

func TestRemoveShard(t *testing.T) {
	topo := buildTree(t)
	v0 := topo.Version()
	if err := topo.RemoveShard(2); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Shard(2); err == nil {
		t.Fatal("removed shard still resolvable")
	}
	if got := topo.ShardsInRegion(1); len(got) != 1 {
		t.Fatalf("region 1 shards after remove = %v", got)
	}
	if topo.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", topo.Version(), v0+1)
	}
	if err := topo.RemoveShard(2); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestSnapshotApplyFencing(t *testing.T) {
	topo := buildTree(t)
	snap := topo.Snapshot()
	if snap.Version != topo.Version() || len(snap.Regions) != 3 || len(snap.Shards) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// A fresh topology accepts the snapshot wholesale.
	other := New()
	if !other.Apply(snap) {
		t.Fatal("fresh topology rejected snapshot")
	}
	if other.Version() != snap.Version {
		t.Fatalf("applied version = %d, want %d", other.Version(), snap.Version)
	}
	if sh, err := other.Shard(3); err != nil || sh.Leaf != 2 || len(sh.Replicas) != 3 {
		t.Fatalf("applied shard 3 = %+v, %v", sh, err)
	}
	if l, err := other.Leader(1); err != nil || l != 110 {
		t.Fatalf("applied leader(1) = %v, %v", l, err)
	}

	// Stale and duplicate snapshots are fenced out.
	if other.Apply(snap) {
		t.Fatal("duplicate snapshot should be rejected")
	}
	if err := other.AddReplicaToShard(1, 42); err != nil {
		t.Fatal(err)
	}
	if other.Apply(snap) {
		t.Fatal("stale snapshot should be rejected after local mutation")
	}
	if sh, _ := other.Shard(1); len(sh.Replicas) != 4 {
		t.Fatalf("stale apply clobbered local state: %v", sh.Replicas)
	}

	// Snapshots are deep copies: mutating the source must not leak.
	snap2 := topo.Snapshot()
	snap2.Shards[0].Replicas[0] = 999
	if sh, _ := topo.Shard(snap2.Shards[0].ID); sh.Replicas[0] == 999 {
		t.Fatal("snapshot aliases live replica slice")
	}
}

func TestDeepTree(t *testing.T) {
	topo := New()
	topo.AddRegion(0, 0, 1, nil)
	// Chain of 10 nested regions.
	for c := types.ColorID(1); c <= 10; c++ {
		if err := topo.AddRegion(c, c-1, types.NodeID(c), nil); err != nil {
			t.Fatal(err)
		}
	}
	topo.AddShard(1, 10, []types.NodeID{50})
	if !topo.InRegion(0, 10) {
		t.Fatal("deep descendant not in root region")
	}
	path, err := topo.PathToOwner(10, 0)
	if err != nil || len(path) != 10 {
		t.Fatalf("deep path = %v, %v", path, err)
	}
	if got := topo.ShardsInRegion(5); len(got) != 1 {
		t.Fatalf("mid-region shards = %v", got)
	}
}
