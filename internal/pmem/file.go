package pmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// File persistence for the simulated PM device: the arena is snapshotted
// to a file so a multi-process deployment (cmd/flexlog-server) preserves
// its "persistent memory" across process restarts — standing in for the
// DAX-mapped pool file a PMDK deployment would reopen.
//
// Snapshot format: [8B magic][8B size][4B crc of data][data]. Writes go to
// a temp file and are renamed into place, so a crash mid-save leaves the
// previous snapshot intact.

const fileMagic = 0x464C504D454D3100 // "FLPMEM1\0"

// SaveTo atomically snapshots the arena to path.
func (p *Pool) SaveTo(path string) error {
	p.mu.RLock()
	data := make([]byte, len(p.data))
	copy(data, p.data)
	p.mu.RUnlock()

	buf := make([]byte, 20+len(data))
	binary.LittleEndian.PutUint64(buf[0:8], fileMagic)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(data)))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(data))
	copy(buf[20:], data)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pmem-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// LoadFrom restores a pool from a snapshot file. The pool adopts the
// snapshot's size and the given latency model. In-flight transactions do
// not exist in a snapshot (SaveTo captures committed arena contents; undo
// logs of live transactions are process state, so a process crash between
// transactional stores and SaveTo behaves like a PM crash without
// recovery — callers snapshot at quiescent points).
func LoadFrom(path string, model LatencyModel) (*Pool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 20 {
		return nil, fmt.Errorf("pmem: snapshot %s truncated", path)
	}
	if binary.LittleEndian.Uint64(raw[0:8]) != fileMagic {
		return nil, fmt.Errorf("pmem: %s is not a pmem snapshot", path)
	}
	size := binary.LittleEndian.Uint64(raw[8:16])
	crc := binary.LittleEndian.Uint32(raw[16:20])
	data := raw[20:]
	if uint64(len(data)) != size {
		return nil, fmt.Errorf("pmem: snapshot %s has %d bytes, header says %d", path, len(data), size)
	}
	if crc32.ChecksumIEEE(data) != crc {
		return nil, fmt.Errorf("pmem: snapshot %s failed its checksum", path)
	}
	p := &Pool{
		data:   append([]byte(nil), data...),
		model:  model,
		active: make(map[uint64]*Tx),
	}
	return p, nil
}
