package pmem

import (
	"time"

	"flexlog/internal/simclock"
)

// LatencyModel describes the cost of device accesses as an affine function
// of the transfer size, plus an optional per-operation kernel-crossing
// overhead (the pmem-via-syscall configuration of the paper's Figure 1).
//
// The default models are calibrated so the three curves of Figure 1 keep
// their relative order and rough magnitudes:
//
//	pmem (kernel bypass)  <  pmem via syscalls  <  SSD file I/O
//
// with PM roughly an order of magnitude faster than the SSD and the
// kernel-bypass path a further large factor below the syscall path at
// small block sizes.
type LatencyModel struct {
	ReadBase    time.Duration // fixed cost per read
	ReadPerKB   time.Duration // additional cost per KiB read
	WriteBase   time.Duration // fixed cost per write
	WritePerKB  time.Duration // additional cost per KiB written
	SyscallCost time.Duration // added to every op when Syscall is set
	Syscall     bool          // model OS-mediated access instead of DAX
}

// OptaneBypass models Intel Optane DC PM accessed through kernel-bypass
// (DAX-mapped) loads and stores, as in the paper's pmem_read/pmem_write.
func OptaneBypass() LatencyModel {
	return LatencyModel{
		ReadBase:   300 * time.Nanosecond,
		ReadPerKB:  120 * time.Nanosecond,
		WriteBase:  500 * time.Nanosecond,
		WritePerKB: 250 * time.Nanosecond,
	}
}

// OptaneSyscall models the same device accessed through read()/write()
// system calls (the paper's read_syscall/write_syscall curves).
func OptaneSyscall() LatencyModel {
	m := OptaneBypass()
	m.Syscall = true
	m.SyscallCost = 1500 * time.Nanosecond
	return m
}

// Zero is the latency-free model used by unit tests.
func Zero() LatencyModel { return LatencyModel{} }

// readCost returns the modeled latency of reading n bytes.
func (m LatencyModel) readCost(n int) time.Duration {
	d := m.ReadBase + m.ReadPerKB*time.Duration(n)/1024
	if m.Syscall {
		d += m.SyscallCost
	}
	return d
}

// writeCost returns the modeled latency of writing n bytes.
func (m LatencyModel) writeCost(n int) time.Duration {
	d := m.WriteBase + m.WritePerKB*time.Duration(n)/1024
	if m.Syscall {
		d += m.SyscallCost
	}
	return d
}

// ReadCost exposes the modeled read latency (used by the Fig. 1 bench).
func (m LatencyModel) ReadCost(n int) time.Duration { return m.readCost(n) }

// WriteCost exposes the modeled write latency (used by the Fig. 1 bench).
func (m LatencyModel) WriteCost(n int) time.Duration { return m.writeCost(n) }

// TimeOf returns the total modeled device time the counted operations
// would take — the accounting backbone of the throughput benchmarks, which
// run functionally and convert observed operation counts into modeled time
// using the same calibrated constants that latency injection uses.
func (m LatencyModel) TimeOf(s Stats) time.Duration {
	d := time.Duration(s.Reads)*m.ReadBase + m.ReadPerKB*time.Duration(s.BytesRead)/1024
	d += time.Duration(s.Writes)*m.WriteBase + m.WritePerKB*time.Duration(s.BytesWritten)/1024
	if m.Syscall {
		d += time.Duration(s.Reads+s.Writes) * m.SyscallCost
	}
	return d
}

func (m LatencyModel) waitRead(n int)  { simclock.Wait(m.readCost(n)) }
func (m LatencyModel) waitWrite(n int) { simclock.Wait(m.writeCost(n)) }
