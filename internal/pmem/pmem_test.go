package pmem

import (
	"bytes"
	"errors"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestPool(t *testing.T, size int) *Pool {
	t.Helper()
	p, err := New(size, Zero())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsTinyPool(t *testing.T) {
	if _, err := New(4, Zero()); err == nil {
		t.Fatal("expected error for pool smaller than header")
	}
}

func TestAllocBasics(t *testing.T) {
	p := newTestPool(t, 1024)
	off1, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != headerSize {
		t.Fatalf("first alloc at %d, want %d", off1, headerSize)
	}
	off2, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off1+100 {
		t.Fatalf("second alloc at %d, want %d", off2, off1+100)
	}
	if got := p.Allocated(); got != headerSize+200 {
		t.Fatalf("allocated = %d", got)
	}
}

func TestAllocErrors(t *testing.T) {
	p := newTestPool(t, 64)
	if _, err := p.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := p.Alloc(-1); err == nil {
		t.Error("Alloc(-1) should fail")
	}
	if _, err := p.Alloc(1000); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("oversized alloc: err = %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := newTestPool(t, 4096)
	off, _ := p.Alloc(16)
	want := []byte("hello, optane!!!")
	if err := p.Write(off, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := p.Read(off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	p := newTestPool(t, 64)
	if err := p.Write(60, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write OOB: %v", err)
	}
	if err := p.Read(60, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read OOB: %v", err)
	}
}

func TestAllocatorPersistsAcrossCrash(t *testing.T) {
	p := newTestPool(t, 1024)
	p.Alloc(100)
	p.Crash()
	p.Recover()
	off, err := p.Alloc(50)
	if err != nil {
		t.Fatal(err)
	}
	if off != headerSize+100 {
		t.Fatalf("post-recovery alloc at %d, want %d", off, headerSize+100)
	}
}

func TestCrashBlocksOperations(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(8)
	p.Crash()
	if !p.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if err := p.Write(off, make([]byte, 8)); !errors.Is(err, ErrCrashed) {
		t.Errorf("write while crashed: %v", err)
	}
	if err := p.Read(off, make([]byte, 8)); !errors.Is(err, ErrCrashed) {
		t.Errorf("read while crashed: %v", err)
	}
	if _, err := p.Alloc(8); !errors.Is(err, ErrCrashed) {
		t.Errorf("alloc while crashed: %v", err)
	}
	if _, err := p.Begin(); !errors.Is(err, ErrCrashed) {
		t.Errorf("begin while crashed: %v", err)
	}
	p.Recover()
	if p.Crashed() {
		t.Fatal("still crashed after Recover")
	}
	if err := p.Write(off, make([]byte, 8)); err != nil {
		t.Fatalf("write after recover: %v", err)
	}
}

func TestTxCommitDurable(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(8)
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(off, []byte("ABCDEFGH")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	p.Recover()
	got := make([]byte, 8)
	p.Read(off, got)
	if string(got) != "ABCDEFGH" {
		t.Fatalf("committed data lost: %q", got)
	}
}

func TestTxAbortRestores(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(8)
	p.Write(off, []byte("original"))
	tx, _ := p.Begin()
	tx.Put(off, []byte("mutated!"))
	// Mid-transaction the new data is visible (PMDK semantics).
	got := make([]byte, 8)
	p.Read(off, got)
	if string(got) != "mutated!" {
		t.Fatalf("in-tx read = %q", got)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	p.Read(off, got)
	if string(got) != "original" {
		t.Fatalf("abort did not restore: %q", got)
	}
}

func TestCrashRollsBackUncommitted(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(16)
	p.Write(off, []byte("0123456789abcdef"))
	tx, _ := p.Begin()
	tx.Put(off, []byte("XXXXXXXX"))
	tx.Put(off+8, []byte("YYYYYYYY"))
	p.Crash()
	p.Recover()
	got := make([]byte, 16)
	p.Read(off, got)
	if string(got) != "0123456789abcdef" {
		t.Fatalf("uncommitted tx survived crash: %q", got)
	}
	st := p.Stats()
	if st.RecoveryRollbks != 1 {
		t.Fatalf("recovery rollbacks = %d, want 1", st.RecoveryRollbks)
	}
	// The crashed tx is dead.
	if err := tx.Put(off, []byte("ZZZZZZZZ")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put on rolled-back tx: %v", err)
	}
}

func TestTxUndoOrderNestedOverwrites(t *testing.T) {
	// Two Puts to the same range: undo must restore the ORIGINAL value,
	// applying records in reverse order.
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(4)
	p.Write(off, []byte("orig"))
	tx, _ := p.Begin()
	tx.Put(off, []byte("aaaa"))
	tx.Put(off, []byte("bbbb"))
	tx.Abort()
	got := make([]byte, 4)
	p.Read(off, got)
	if string(got) != "orig" {
		t.Fatalf("reverse undo broken: %q", got)
	}
}

func TestTxDoneErrors(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(4)
	tx, _ := p.Begin()
	tx.Commit()
	if err := tx.Put(off, []byte("aaaa")); !errors.Is(err, ErrTxDone) {
		t.Errorf("put after commit: %v", err)
	}
	if err := tx.Get(off, make([]byte, 4)); !errors.Is(err, ErrTxDone) {
		t.Errorf("get after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestTxGet(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(4)
	p.Write(off, []byte("data"))
	tx, _ := p.Begin()
	buf := make([]byte, 4)
	if err := tx.Get(off, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("tx get = %q", buf)
	}
	tx.Commit()
}

func TestTxPutOutOfRange(t *testing.T) {
	p := newTestPool(t, 64)
	tx, _ := p.Begin()
	if err := tx.Put(60, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("tx put OOB: %v", err)
	}
	tx.Abort()
}

func TestConcurrentDisjointTxs(t *testing.T) {
	p := newTestPool(t, 1<<16)
	const workers = 8
	offs := make([]uint64, workers)
	for i := range offs {
		offs[i], _ = p.Alloc(8)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tx, err := p.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				var v [8]byte
				putLeU64(v[:], uint64(i*1000+j))
				if err := tx.Put(offs[i], v[:]); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		var v [8]byte
		p.Read(offs[i], v[:])
		if got := leU64(v[:]); got != uint64(i*1000+99) {
			t.Errorf("worker %d final value = %d", i, got)
		}
	}
	if p.Stats().TxCommits != workers*100 {
		t.Fatalf("commits = %d", p.Stats().TxCommits)
	}
}

// Property: committed data survives crash+recover; uncommitted data never does.
func TestCrashConsistencyProperty(t *testing.T) {
	f := func(committed, pending []byte) bool {
		if len(committed) == 0 || len(committed) > 128 {
			committed = []byte("c")
		}
		if len(pending) == 0 || len(pending) > 128 {
			pending = []byte("p")
		}
		p, _ := New(4096, Zero())
		offC, _ := p.Alloc(len(committed))
		offP, _ := p.Alloc(len(pending))
		orig := bytes.Repeat([]byte{0xEE}, len(pending))
		p.Write(offP, orig)

		tx1, _ := p.Begin()
		tx1.Put(offC, committed)
		tx1.Commit()

		tx2, _ := p.Begin()
		tx2.Put(offP, pending)

		p.Crash()
		p.Recover()

		gotC := make([]byte, len(committed))
		gotP := make([]byte, len(pending))
		p.Read(offC, gotC)
		p.Read(offP, gotP)
		return bytes.Equal(gotC, committed) && bytes.Equal(gotP, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLeU64RoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		var b [8]byte
		putLeU64(b[:], v)
		return leU64(b[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	p := newTestPool(t, 1024)
	off, _ := p.Alloc(10)
	p.Write(off, make([]byte, 10))
	p.Read(off, make([]byte, 10))
	st := p.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 10 || st.BytesRead != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	p := newTestPool(t, 64)
	off, _ := p.Alloc(4)
	p.Write(off, []byte("abcd"))
	snap := p.Snapshot()
	p.Write(off, []byte("wxyz"))
	if string(snap[off:off+4]) != "abcd" {
		t.Fatal("snapshot aliases live arena")
	}
}

func TestLatencyModelCosts(t *testing.T) {
	bypass := OptaneBypass()
	syscall := OptaneSyscall()
	for _, n := range []int{64, 1024, 8192} {
		if bypass.ReadCost(n) >= syscall.ReadCost(n) {
			t.Errorf("bypass read should be cheaper than syscall at %dB", n)
		}
		if bypass.WriteCost(n) <= bypass.ReadCost(n) {
			t.Errorf("PM writes should cost more than reads at %dB", n)
		}
	}
	if bypass.ReadCost(8192) <= bypass.ReadCost(64) {
		t.Error("read cost should grow with size")
	}
	if z := Zero(); z.ReadCost(1024) != 0 || z.WriteCost(1024) != 0 {
		t.Error("zero model should be free")
	}
}

func TestLatencyInjectionApplies(t *testing.T) {
	// With a large modeled latency and injection enabled, ops must slow down.
	p, _ := New(1024, LatencyModel{ReadBase: 2 * time.Millisecond, WriteBase: 2 * time.Millisecond})
	off, _ := p.Alloc(8)
	prev := enableInjection(t)
	defer prev()
	start := time.Now()
	p.Write(off, make([]byte, 8))
	p.Read(off, make([]byte, 8))
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("latency not injected: %v", el)
	}
}

func TestTxString(t *testing.T) {
	p := newTestPool(t, 1024)
	tx, _ := p.Begin()
	if tx.String() == "" {
		t.Fatal("empty String()")
	}
	tx.Abort()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := newTestPool(t, 4096)
	off, _ := p.Alloc(16)
	p.Write(off, []byte("persist-me-12345"))
	path := t.TempDir() + "/pool.pmem"
	if err := p.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFrom(path, Zero())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := restored.Read(off, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist-me-12345" {
		t.Fatalf("restored = %q", got)
	}
	// The allocator state survived too (it lives in the arena header).
	off2, err := restored.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off+16 {
		t.Fatalf("post-restore alloc at %d, want %d", off2, off+16)
	}
}

func TestLoadFromRejectsCorruption(t *testing.T) {
	p := newTestPool(t, 1024)
	path := t.TempDir() + "/pool.pmem"
	if err := p.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	if _, err := LoadFrom(path, Zero()); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	// Garbage and missing files.
	os.WriteFile(path, []byte("junk"), 0o644)
	if _, err := LoadFrom(path, Zero()); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := LoadFrom(path+".missing", Zero()); err == nil {
		t.Fatal("missing file accepted")
	}
}
