// Package pmem simulates a byte-addressable persistent-memory device with a
// PMDK-style transactional update API.
//
// The original FlexLog stores its log in Intel Optane DC PM through PMDK's
// libpmemobj (BEGIN/PUT/GET/COMMIT/ROLLBACK). Optane is discontinued and not
// available in this environment, so this package provides the closest
// synthetic equivalent:
//
//   - a fixed-size arena addressed by byte offset, with a persistent bump
//     allocator whose state lives inside the arena header;
//   - load/store access with a calibrated latency model (kernel-bypass vs
//     syscall-mediated, per the paper's Figure 1);
//   - undo-log transactions: a crash before Commit rolls every transactional
//     store back, a crash after Commit preserves them — the same guarantee
//     libpmemobj gives;
//   - simulated power failure (Crash) and recovery (Recover), used by the
//     fault-injection tests and the Fig. 10 recovery experiment.
//
// Crash simulation note: the arena survives Crash in process memory (it
// stands in for the physical DIMM). Undo records for in-flight transactions
// also survive, mirroring libpmemobj, whose undo log itself resides in PM;
// Recover applies them exactly as PMDK's transaction recovery would.
package pmem

import (
	"errors"
	"fmt"
	"sync"
)

// Arena layout: an 8-byte header at offset 0 holds the persistent bump
// pointer. User allocations start at headerSize.
const headerSize = 8

// DataStart is the offset of the first allocation in any pool — exposed so
// re-attaching consumers (storage.Attach) can locate their regions in a
// restored snapshot without re-allocating.
const DataStart uint64 = headerSize

var (
	// ErrCrashed is returned by operations attempted between Crash and Recover.
	ErrCrashed = errors.New("pmem: device is in crashed state")
	// ErrOutOfSpace is returned when an allocation does not fit.
	ErrOutOfSpace = errors.New("pmem: out of space")
	// ErrOutOfRange is returned for accesses outside the arena or an allocation.
	ErrOutOfRange = errors.New("pmem: access out of range")
	// ErrTxDone is returned when using a committed or aborted transaction.
	ErrTxDone = errors.New("pmem: transaction already finished")
)

// Pool is a simulated persistent-memory pool.
type Pool struct {
	mu      sync.RWMutex
	data    []byte
	model   LatencyModel
	crashed bool

	// active transactions, keyed by id; undo state stands in for the
	// PM-resident undo log of libpmemobj.
	txSeq  uint64
	active map[uint64]*Tx

	stats Stats
}

// Stats counts device operations, for the profiling experiments.
type Stats struct {
	Reads, Writes   uint64
	BytesRead       uint64
	BytesWritten    uint64
	TxCommits       uint64
	TxAborts        uint64
	RecoveryRollbks uint64
}

// New creates an in-memory simulated PM pool of the given size with the
// given latency model.
func New(size int, model LatencyModel) (*Pool, error) {
	if size < headerSize {
		return nil, fmt.Errorf("pmem: pool size %d below minimum %d", size, headerSize)
	}
	p := &Pool{
		data:   make([]byte, size),
		model:  model,
		active: make(map[uint64]*Tx),
	}
	p.storeBump(headerSize)
	return p, nil
}

// Size returns the total pool size in bytes.
func (p *Pool) Size() int { return len(p.data) }

// Model returns the pool's latency model.
func (p *Pool) Model() LatencyModel { return p.model }

// Stats returns a snapshot of the operation counters.
func (p *Pool) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.stats
}

func (p *Pool) loadBump() uint64 {
	return leU64(p.data[0:8])
}

func (p *Pool) storeBump(v uint64) {
	putLeU64(p.data[0:8], v)
}

// Alloc reserves n bytes and returns the offset of the reservation. The
// allocator is a persistent bump pointer: its state is stored in the arena
// header, so allocations survive crash/recovery.
func (p *Pool) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pmem: invalid allocation size %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return 0, ErrCrashed
	}
	off := p.loadBump()
	if off+uint64(n) > uint64(len(p.data)) {
		return 0, ErrOutOfSpace
	}
	p.storeBump(off + uint64(n))
	return off, nil
}

// Allocated returns the number of bytes currently allocated (including the
// header).
func (p *Pool) Allocated() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.loadBump()
}

// Read copies len(buf) bytes starting at off into buf, charging the modeled
// read latency.
func (p *Pool) Read(off uint64, buf []byte) error {
	p.mu.RLock()
	if p.crashed {
		p.mu.RUnlock()
		return ErrCrashed
	}
	if off+uint64(len(buf)) > uint64(len(p.data)) {
		p.mu.RUnlock()
		return ErrOutOfRange
	}
	copy(buf, p.data[off:off+uint64(len(buf))])
	p.mu.RUnlock()
	p.model.waitRead(len(buf))
	p.count(func(s *Stats) { s.Reads++; s.BytesRead += uint64(len(buf)) })
	return nil
}

// Write stores data at off non-transactionally (the caller must ensure the
// write is idempotent or protected by a transaction), charging the modeled
// write latency.
func (p *Pool) Write(off uint64, data []byte) error {
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return ErrCrashed
	}
	if off+uint64(len(data)) > uint64(len(p.data)) {
		p.mu.Unlock()
		return ErrOutOfRange
	}
	copy(p.data[off:], data)
	p.mu.Unlock()
	p.model.waitWrite(len(data))
	p.count(func(s *Stats) { s.Writes++; s.BytesWritten += uint64(len(data)) })
	return nil
}

func (p *Pool) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// Crash simulates a power failure: all subsequent operations fail until
// Recover is called. In-flight transactions remain pending; Recover rolls
// them back.
func (p *Pool) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed = true
}

// Crashed reports whether the pool is in the crashed state.
func (p *Pool) Crashed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.crashed
}

// Recover simulates PMDK pool reopening after a crash: every transaction
// that had not committed is rolled back via its undo log, then the pool
// becomes usable again. Calling Recover on a healthy pool is a no-op.
func (p *Pool) Recover() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, tx := range p.active {
		tx.applyUndoLocked(p)
		tx.state = txAborted
		delete(p.active, id)
		p.stats.RecoveryRollbks++
	}
	p.crashed = false
}

// Snapshot returns a copy of the raw arena (test helper for verifying
// persistence semantics).
func (p *Pool) Snapshot() []byte {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]byte, len(p.data))
	copy(out, p.data)
	return out
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
