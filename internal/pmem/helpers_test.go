package pmem

import (
	"testing"

	"flexlog/internal/simclock"
)

// enableInjection turns latency injection on and returns a restore func.
func enableInjection(t *testing.T) func() {
	t.Helper()
	prev := simclock.Enable(true)
	return func() { simclock.Enable(prev) }
}
