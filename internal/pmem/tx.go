package pmem

import "fmt"

// Tx is an undo-log transaction over a Pool, mirroring PMDK's
// BEGIN/PUT/GET/COMMIT/ROLLBACK API. Stores made through a Tx are applied to
// the arena immediately, but the pre-images are retained in the undo log:
// Abort (or crash recovery) restores them, Commit discards them.
//
// A Tx must be used by a single goroutine; distinct transactions on the same
// pool may run concurrently and the caller is responsible for not making
// them overlap in address ranges (as with libpmemobj).
type Tx struct {
	pool  *Pool
	id    uint64
	undo  []undoRecord
	state txState
}

type txState int

const (
	txActive txState = iota
	txCommitted
	txAborted
)

type undoRecord struct {
	off uint64
	old []byte
}

// Begin starts a transaction.
func (p *Pool) Begin() (*Tx, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil, ErrCrashed
	}
	p.txSeq++
	tx := &Tx{pool: p, id: p.txSeq}
	p.active[tx.id] = tx
	return tx, nil
}

// Put transactionally stores data at off: the previous contents are
// snapshotted to the undo log first (charged as an extra device write, as
// PMDK does), then the new data is applied.
func (tx *Tx) Put(off uint64, data []byte) error {
	if tx.state != txActive {
		return ErrTxDone
	}
	p := tx.pool
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return ErrCrashed
	}
	if off+uint64(len(data)) > uint64(len(p.data)) {
		p.mu.Unlock()
		return ErrOutOfRange
	}
	old := make([]byte, len(data))
	copy(old, p.data[off:])
	tx.undo = append(tx.undo, undoRecord{off: off, old: old})
	copy(p.data[off:], data)
	p.mu.Unlock()
	// One write for the undo snapshot, one for the data itself.
	p.model.waitWrite(len(data))
	p.model.waitWrite(len(data))
	p.count(func(s *Stats) { s.Writes += 2; s.BytesWritten += 2 * uint64(len(data)) })
	return nil
}

// Get reads len(buf) bytes at off within the transaction (equivalent to a
// plain read; provided for API symmetry with PMDK's GET).
func (tx *Tx) Get(off uint64, buf []byte) error {
	if tx.state != txActive {
		return ErrTxDone
	}
	return tx.pool.Read(off, buf)
}

// Commit makes the transaction's stores durable and discards the undo log.
func (tx *Tx) Commit() error {
	if tx.state != txActive {
		return ErrTxDone
	}
	p := tx.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrCrashed
	}
	tx.state = txCommitted
	tx.undo = nil
	delete(p.active, tx.id)
	p.stats.TxCommits++
	return nil
}

// Abort rolls every store of the transaction back.
func (tx *Tx) Abort() error {
	if tx.state != txActive {
		return ErrTxDone
	}
	p := tx.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrCrashed
	}
	tx.applyUndoLocked(p)
	tx.state = txAborted
	delete(p.active, tx.id)
	p.stats.TxAborts++
	return nil
}

// applyUndoLocked restores pre-images in reverse order. Caller holds p.mu.
func (tx *Tx) applyUndoLocked(p *Pool) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		r := tx.undo[i]
		copy(p.data[r.off:], r.old)
	}
	tx.undo = nil
}

func (tx *Tx) String() string {
	return fmt.Sprintf("pmem.Tx(id=%d, undo=%d, state=%d)", tx.id, len(tx.undo), tx.state)
}
