// Package faas is a miniature serverless platform modeled on Figure 3 of
// the paper: front-end servers receive and authenticate invocations, an
// orchestrator tracks cluster utilization, and a workers' manager picks a
// host, retrieves the function's deployment state from FlexLog and starts
// the instance; the running function then uses the FlexLog API for its
// inputs and state.
//
// The platform exists to drive FlexLog the way the paper's serverless
// applications do (Table 1 profiling, the message-queue and map-reduce
// examples); container machinery is stood in for by Go closures, while the
// control-plane flow — deploy state through the log, route through the
// orchestrator, per-worker concurrency limits, cold-start accounting —
// matches the figure.
package faas

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

var (
	// ErrUnknownFunction is returned for invocations of undeployed names.
	ErrUnknownFunction = errors.New("faas: unknown function")
	// ErrUnauthenticated is returned by the front-end for requests
	// without a tenant.
	ErrUnauthenticated = errors.New("faas: unauthenticated request")
	// ErrOverloaded is returned when every worker is at capacity.
	ErrOverloaded = errors.New("faas: all workers at capacity")
)

// DeployColor is the color holding deployment records (the "function
// state, e.g. a Docker image" the workers' manager retrieves in Fig. 3).
const DeployColor types.ColorID = 4000

// Handler is the user-provided function code.
type Handler func(inv *Invocation) ([]byte, error)

// Invocation is one function execution context.
type Invocation struct {
	Function string
	Tenant   string
	Input    []byte
	Log      *core.Client // the FlexLog handle (Fig. 3: functions talk to FlexLog directly)
	Worker   int
}

// deployRecord is the state persisted to FlexLog at deployment.
type deployRecord struct {
	Name       string    `json:"name"`
	Version    int       `json:"version"`
	DeployedAt time.Time `json:"deployed_at"`
}

// Stats counts platform activity.
type Stats struct {
	Invocations uint64
	Failures    uint64
	ColdStarts  uint64
	Rejected    uint64
}

// worker is one execution host.
type worker struct {
	id       int
	slots    chan struct{}
	warm     map[string]bool // functions with a warm instance
	warmMu   sync.Mutex
	client   *core.Client
	inflight int
	mu       sync.Mutex
}

// Platform is the serverless control plane plus execution layer.
type Platform struct {
	cluster *core.Cluster

	mu       sync.Mutex
	handlers map[string]Handler
	versions map[string]int
	workers  []*worker
	next     int
	stats    Stats
}

// Config sizes the platform.
type Config struct {
	Workers        int
	SlotsPerWorker int // concurrent instances per worker
}

// New builds a platform over an existing FlexLog cluster. The deployment
// color is provisioned on demand.
func New(cfg Config, cluster *core.Cluster) (*Platform, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.SlotsPerWorker <= 0 {
		cfg.SlotsPerWorker = 8
	}
	if err := cluster.AddColor(DeployColor, types.MasterColor); err != nil {
		return nil, err
	}
	p := &Platform{
		cluster:  cluster,
		handlers: make(map[string]Handler),
		versions: make(map[string]int),
	}
	for i := 0; i < cfg.Workers; i++ {
		c, err := cluster.NewClient()
		if err != nil {
			return nil, err
		}
		w := &worker{
			id:     i,
			slots:  make(chan struct{}, cfg.SlotsPerWorker),
			warm:   make(map[string]bool),
			client: c,
		}
		p.workers = append(p.workers, w)
	}
	return p, nil
}

// Deploy registers function code and appends the deployment record to
// FlexLog (Fig. 3 step 4 retrieves it at instance start).
func (p *Platform) Deploy(name string, h Handler) error {
	p.mu.Lock()
	p.handlers[name] = h
	p.versions[name]++
	version := p.versions[name]
	w := p.workers[0]
	p.mu.Unlock()

	rec, err := json.Marshal(deployRecord{Name: name, Version: version, DeployedAt: time.Now()})
	if err != nil {
		return err
	}
	if _, err := w.client.Append([][]byte{rec}, DeployColor); err != nil {
		return fmt.Errorf("faas: persisting deployment: %w", err)
	}
	return nil
}

// Invoke runs one invocation end to end: front-end auth, orchestrator
// routing, workers' manager instance start, function execution.
func (p *Platform) Invoke(tenant, function string, input []byte) ([]byte, error) {
	// Front-end: authenticate (Fig. 3 step 1).
	if tenant == "" {
		p.mu.Lock()
		p.stats.Rejected++
		p.mu.Unlock()
		return nil, ErrUnauthenticated
	}
	// Orchestrator: pick the least-loaded worker (Fig. 3 steps 2–3).
	p.mu.Lock()
	h, ok := p.handlers[function]
	if !ok {
		p.stats.Rejected++
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownFunction, function)
	}
	w := p.pickWorkerLocked()
	p.mu.Unlock()
	if w == nil {
		p.mu.Lock()
		p.stats.Rejected++
		p.mu.Unlock()
		return nil, ErrOverloaded
	}
	defer w.release()

	// Workers' manager: start the instance — a cold start retrieves the
	// deployment state from FlexLog first (Fig. 3 step 4).
	w.warmMu.Lock()
	cold := !w.warm[function]
	w.warm[function] = true
	w.warmMu.Unlock()
	if cold {
		p.mu.Lock()
		p.stats.ColdStarts++
		p.mu.Unlock()
		if _, err := w.client.Subscribe(DeployColor, types.InvalidSN); err != nil {
			return nil, fmt.Errorf("faas: retrieving deployment state: %w", err)
		}
	}

	inv := &Invocation{
		Function: function,
		Tenant:   tenant,
		Input:    input,
		Log:      w.client,
		Worker:   w.id,
	}
	out, err := h(inv)
	p.mu.Lock()
	p.stats.Invocations++
	if err != nil {
		p.stats.Failures++
	}
	p.mu.Unlock()
	return out, err
}

// pickWorkerLocked chooses the worker with the most free slots; nil when
// everything is saturated. Caller holds p.mu.
func (p *Platform) pickWorkerLocked() *worker {
	var best *worker
	bestFree := 0
	for i := range p.workers {
		w := p.workers[(p.next+i)%len(p.workers)]
		free := cap(w.slots) - len(w.slots)
		if free > bestFree {
			best, bestFree = w, free
		}
	}
	p.next++
	if best == nil {
		return nil
	}
	best.slots <- struct{}{}
	return best
}

func (w *worker) release() { <-w.slots }

// Stats returns a snapshot of the counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NewClient hands out a FlexLog client (for external drivers that want to
// observe function effects directly).
func (p *Platform) NewClient() (*core.Client, error) {
	return p.cluster.NewClient()
}
