package faas

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func newPlatform(t *testing.T) (*Platform, *core.Cluster) {
	t.Helper()
	cl, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	p, err := New(Config{Workers: 2, SlotsPerWorker: 4}, cl)
	if err != nil {
		t.Fatal(err)
	}
	return p, cl
}

func TestDeployAndInvoke(t *testing.T) {
	p, _ := newPlatform(t)
	err := p.Deploy("echo", func(inv *Invocation) ([]byte, error) {
		return append([]byte("echo:"), inv.Input...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke("tenant-a", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("out = %q", out)
	}
	st := p.Stats()
	if st.Invocations != 1 || st.ColdStarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWarmInvocationsSkipColdStart(t *testing.T) {
	p, _ := newPlatform(t)
	p.Deploy("f", func(inv *Invocation) ([]byte, error) { return nil, nil })
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke("t", "f", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	// At most one cold start per worker.
	if st.ColdStarts > 2 {
		t.Fatalf("cold starts = %d", st.ColdStarts)
	}
	if st.Invocations != 5 {
		t.Fatalf("invocations = %d", st.Invocations)
	}
}

func TestAuthAndUnknown(t *testing.T) {
	p, _ := newPlatform(t)
	if _, err := p.Invoke("", "f", nil); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("unauthenticated: %v", err)
	}
	if _, err := p.Invoke("t", "missing", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("unknown function: %v", err)
	}
	if p.Stats().Rejected != 2 {
		t.Fatalf("rejected = %d", p.Stats().Rejected)
	}
}

func TestFunctionsShareStateThroughFlexLog(t *testing.T) {
	p, cl := newPlatform(t)
	if err := cl.AddColor(10, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	p.Deploy("producer", func(inv *Invocation) ([]byte, error) {
		sn, err := inv.Log.Append([][]byte{inv.Input}, 10)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", uint64(sn))), nil
	})
	p.Deploy("consumer", func(inv *Invocation) ([]byte, error) {
		var sn uint64
		fmt.Sscanf(string(inv.Input), "%d", &sn)
		return inv.Log.Read(types.SN(sn), 10)
	})
	snStr, err := p.Invoke("t", "producer", []byte("shared-state"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke("t", "consumer", snStr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared-state" {
		t.Fatalf("consumer read %q", got)
	}
}

func TestFunctionErrorCounted(t *testing.T) {
	p, _ := newPlatform(t)
	p.Deploy("boom", func(inv *Invocation) ([]byte, error) {
		return nil, errors.New("boom")
	})
	if _, err := p.Invoke("t", "boom", nil); err == nil {
		t.Fatal("expected error")
	}
	if p.Stats().Failures != 1 {
		t.Fatalf("failures = %d", p.Stats().Failures)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	p, _ := newPlatform(t)
	p.Deploy("cnt", func(inv *Invocation) ([]byte, error) {
		_, err := inv.Log.Append([][]byte{[]byte("x")}, types.MasterColor)
		return nil, err
	})
	var wg sync.WaitGroup
	const n = 20
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Invoke("t", "cnt", nil)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		} else if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 {
		t.Fatal("no invocation succeeded")
	}
	// The appended records are all in the log.
	c, _ := p.NewClient()
	recs, err := c.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < ok {
		t.Fatalf("log has %d records, want >= %d", len(recs), ok)
	}
}
