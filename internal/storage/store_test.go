package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"flexlog/internal/types"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	st, err := New(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func smallConfig() Config {
	c := TestConfig()
	c.SegmentSize = 512
	c.NumSegments = 3
	c.CacheBytes = 1024
	return c
}

func tok(i int) types.Token { return types.MakeToken(1, uint32(i)) }
func sn(i int) types.SN     { return types.MakeSN(1, uint32(i)) }
func payload(i int) []byte  { return []byte(fmt.Sprintf("record-%04d", i)) }

const colorA types.ColorID = 1
const colorB types.ColorID = 2

func TestConfigValidation(t *testing.T) {
	c := TestConfig()
	c.SegmentSize = 10
	if _, err := New(c); err == nil {
		t.Error("tiny segment size should be rejected")
	}
	c = TestConfig()
	c.NumSegments = 0
	if _, err := New(c); err == nil {
		t.Error("zero segments should be rejected")
	}
}

func TestPutCommitGet(t *testing.T) {
	st := newTestStore(t)
	if err := st.Put(colorA, tok(1), payload(1)); err != nil {
		t.Fatal(err)
	}
	// Uncommitted records are invisible to reads.
	if _, err := st.Get(colorA, sn(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get before commit: %v", err)
	}
	if err := st.Commit(tok(1), sn(1)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(colorA, sn(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(1)) {
		t.Fatalf("get = %q", got)
	}
	if st.MaxSN(colorA) != sn(1) {
		t.Fatalf("maxSN = %v", st.MaxSN(colorA))
	}
}

func TestPutDuplicateToken(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	if err := st.Put(colorA, tok(1), payload(1)); !errors.Is(err, ErrDuplicateToken) {
		t.Fatalf("duplicate put: %v", err)
	}
	if !st.Has(tok(1)) || st.Has(tok(2)) {
		t.Fatal("Has() wrong")
	}
}

func TestCommitIdempotentAndConflicting(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	if err := st.Commit(tok(1), sn(5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(tok(1), sn(5)); err != nil {
		t.Fatalf("idempotent re-commit: %v", err)
	}
	if err := st.Commit(tok(1), sn(6)); err == nil {
		t.Fatal("conflicting re-commit should fail")
	}
	if err := st.Commit(tok(9), sn(1)); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("commit unknown token: %v", err)
	}
	if err := st.Commit(tok(1), types.InvalidSN); err == nil {
		t.Fatal("commit with invalid SN should fail")
	}
}

func TestTokenSN(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	got, ok := st.TokenSN(tok(1))
	if !ok || got.Valid() {
		t.Fatalf("uncommitted TokenSN = %v, %v", got, ok)
	}
	st.Commit(tok(1), sn(3))
	got, ok = st.TokenSN(tok(1))
	if !ok || got != sn(3) {
		t.Fatalf("TokenSN = %v, %v", got, ok)
	}
	if _, ok := st.TokenSN(tok(99)); ok {
		t.Fatal("unknown token should report !ok")
	}
}

func TestColorsAreIsolated(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	st.Commit(tok(1), sn(1))
	if _, err := st.Get(colorB, sn(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-color get: %v", err)
	}
	if st.MaxSN(colorB) != types.InvalidSN {
		t.Fatal("colorB should be empty")
	}
}

func TestScanSortedBySN(t *testing.T) {
	st := newTestStore(t)
	// Commit out of order.
	order := []int{3, 1, 2}
	for _, i := range order {
		st.Put(colorA, tok(i), payload(i))
	}
	for _, i := range order {
		st.Commit(tok(i), sn(i))
	}
	recs, err := st.Scan(colorA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("scan len = %d", len(recs))
	}
	for i, r := range recs {
		if r.SN != sn(i+1) {
			t.Fatalf("scan[%d].SN = %v", i, r.SN)
		}
		if !bytes.Equal(r.Data, payload(i+1)) {
			t.Fatalf("scan[%d].Data = %q", i, r.Data)
		}
	}
	// Empty color scans cleanly.
	if recs, err := st.Scan(colorB); err != nil || len(recs) != 0 {
		t.Fatalf("empty scan = %v, %v", recs, err)
	}
}

func TestScanFrom(t *testing.T) {
	st := newTestStore(t)
	for i := 1; i <= 5; i++ {
		st.Put(colorA, tok(i), payload(i))
		st.Commit(tok(i), sn(i))
	}
	recs, err := st.ScanFrom(colorA, sn(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].SN != sn(4) || recs[1].SN != sn(5) {
		t.Fatalf("scanFrom = %v", recs)
	}
}

func TestTrim(t *testing.T) {
	st := newTestStore(t)
	for i := 1; i <= 5; i++ {
		st.Put(colorA, tok(i), payload(i))
		st.Commit(tok(i), sn(i))
	}
	head, tail, err := st.Trim(colorA, sn(3))
	if err != nil {
		t.Fatal(err)
	}
	if head != sn(4) || tail != sn(5) {
		t.Fatalf("bounds after trim = %v, %v", head, tail)
	}
	for i := 1; i <= 3; i++ {
		if _, err := st.Get(colorA, sn(i)); !errors.Is(err, ErrTrimmed) {
			t.Errorf("get trimmed sn(%d): %v", i, err)
		}
	}
	if _, err := st.Get(colorA, sn(4)); err != nil {
		t.Errorf("get surviving record: %v", err)
	}
	// Trim does not leak into other colors.
	st.Put(colorB, tok(10), payload(10))
	st.Commit(tok(10), sn(1))
	if _, err := st.Get(colorB, sn(1)); err != nil {
		t.Errorf("colorB record lost to colorA trim: %v", err)
	}
}

func TestCommitBelowTrimWatermarkIsDead(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	st.Trim(colorA, sn(10))
	st.Commit(tok(1), sn(5)) // commit races behind a trim
	if _, err := st.Get(colorA, sn(5)); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("get of late-committed trimmed record: %v", err)
	}
}

func TestBoundsEmpty(t *testing.T) {
	st := newTestStore(t)
	h, tl := st.Bounds(colorA)
	if h.Valid() || tl.Valid() {
		t.Fatal("bounds of empty color should be invalid")
	}
}

func TestUncommitted(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	st.Put(colorA, tok(2), payload(2))
	st.Commit(tok(1), sn(1))
	un := st.Uncommitted()
	if len(un) != 1 || un[0].Token != tok(2) {
		t.Fatalf("uncommitted = %v", un)
	}
	if len(un[0].Records) != 1 || !bytes.Equal(un[0].Records[0], payload(2)) {
		t.Fatalf("uncommitted data = %q", un[0].Records)
	}
}

func TestSegmentRolloverAndFlushToSSD(t *testing.T) {
	st, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each entry is 32 + 11 = 43 bytes; a 512-byte segment fits 11 entries.
	// Write enough to force flushes to SSD.
	const n = 100
	for i := 1; i <= n; i++ {
		if err := st.Put(colorA, tok(i), payload(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if err := st.Commit(tok(i), sn(i)); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	stats := st.Stats()
	if stats.Flushes == 0 {
		t.Fatal("expected segment flushes to SSD")
	}
	// All records must still be readable (some from SSD).
	for i := 1; i <= n; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil {
			t.Fatalf("get %d after flush: %v", i, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	st, _ := New(smallConfig())
	if err := st.Put(colorA, tok(1), make([]byte, 1024)); err == nil {
		t.Fatal("oversized record should be rejected")
	}
}

func TestUncommittedBlocksFlushUntilOutOfSpace(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSegments = 2
	st, _ := New(cfg)
	// Fill PM with uncommitted records only: nothing is flushable, so the
	// store must eventually report out of space rather than lose data.
	var lastErr error
	for i := 1; i <= 1000; i++ {
		lastErr = st.Put(colorA, tok(i), payload(i))
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrOutOfSpace) {
		t.Fatalf("expected ErrOutOfSpace, got %v", lastErr)
	}
}

func TestRecoveryRebuildsIndexes(t *testing.T) {
	st, _ := New(smallConfig())
	const n = 60
	for i := 1; i <= n; i++ {
		st.Put(colorA, tok(i), payload(i))
		st.Commit(tok(i), sn(i))
	}
	st.Put(colorB, tok(1000), payload(1000)) // uncommitted survivor
	st.Trim(colorA, sn(10))

	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}

	// Committed, untrimmed records are intact.
	for i := 11; i <= n; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil {
			t.Fatalf("get %d after recovery: %v", i, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
	// Trimmed records stay trimmed.
	if _, err := st.Get(colorA, sn(5)); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("trimmed record resurrected: %v", err)
	}
	// Uncommitted record is still awaiting an SN.
	un := st.Uncommitted()
	if len(un) != 1 || un[0].Token != tok(1000) {
		t.Fatalf("uncommitted after recovery = %v", un)
	}
	if st.MaxSN(colorA) != sn(n) {
		t.Fatalf("maxSN after recovery = %v", st.MaxSN(colorA))
	}
	// The store remains writable after recovery.
	if err := st.Put(colorB, tok(2000), payload(2000)); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if err := st.Commit(tok(2000), types.MakeSN(1, 999)); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}

func TestRecoveryIsRepeatable(t *testing.T) {
	st, _ := New(smallConfig())
	for i := 1; i <= 30; i++ {
		st.Put(colorA, tok(i), payload(i))
		st.Commit(tok(i), sn(i))
	}
	for round := 0; round < 3; round++ {
		st.Crash()
		if err := st.Recover(); err != nil {
			t.Fatalf("recovery round %d: %v", round, err)
		}
	}
	for i := 1; i <= 30; i++ {
		if _, err := st.Get(colorA, sn(i)); err != nil {
			t.Fatalf("get %d after repeated recovery: %v", i, err)
		}
	}
	if st.Stats().Recoveries != 3 {
		t.Fatalf("recoveries = %d", st.Stats().Recoveries)
	}
}

func TestCachePathServesReads(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	st.Commit(tok(1), sn(1))
	st.Get(colorA, sn(1)) // commit pre-populates; this should hit
	stats := st.Stats()
	if stats.CacheHits == 0 {
		t.Fatalf("expected cache hits, stats = %+v", stats)
	}
}

func TestCacheDisabled(t *testing.T) {
	cfg := TestConfig()
	cfg.CacheBytes = 0
	st, _ := New(cfg)
	st.Put(colorA, tok(1), payload(1))
	st.Commit(tok(1), sn(1))
	got, err := st.Get(colorA, sn(1))
	if err != nil || !bytes.Equal(got, payload(1)) {
		t.Fatalf("get with cache off = %q, %v", got, err)
	}
	if h, _ := st.cache.stats(); h != 0 {
		t.Fatal("disabled cache recorded hits")
	}
}

func TestConcurrentPutCommitGet(t *testing.T) {
	st := newTestStore(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := w*per + i + 1
				token := types.MakeToken(uint32(w+1), uint32(i))
				if err := st.Put(colorA, token, payload(id)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if err := st.Commit(token, sn(id)); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				if _, err := st.Get(colorA, sn(id)); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs, _ := st.Scan(colorA)
	if len(recs) != workers*per {
		t.Fatalf("scan found %d records, want %d", len(recs), workers*per)
	}
}

// Property: after any interleaving of puts/commits/trims followed by crash
// and recovery, the committed-and-untrimmed set is exactly preserved.
func TestRecoveryPreservesCommittedProperty(t *testing.T) {
	f := func(commitMask uint16, trimAt uint8) bool {
		st, err := New(smallConfig())
		if err != nil {
			return false
		}
		const n = 16
		committed := map[int]bool{}
		for i := 1; i <= n; i++ {
			if st.Put(colorA, tok(i), payload(i)) != nil {
				return false
			}
			if commitMask&(1<<(i-1)) != 0 {
				if st.Commit(tok(i), sn(i)) != nil {
					return false
				}
				committed[i] = true
			}
		}
		trim := int(trimAt % n)
		if trim > 0 {
			st.Trim(colorA, sn(trim))
		}
		st.Crash()
		if st.Recover() != nil {
			return false
		}
		for i := 1; i <= n; i++ {
			data, err := st.Get(colorA, sn(i))
			switch {
			case committed[i] && i > trim:
				if err != nil || !bytes.Equal(data, payload(i)) {
					return false
				}
			default:
				if err == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsShape(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	st.Commit(tok(1), sn(1))
	s := st.Stats()
	if s.Records != 1 || s.Committed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
