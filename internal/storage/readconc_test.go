package storage

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentGetsDuringFlush hammers Get from many goroutines while a
// writer keeps appending, forcing segment flushes that reuse the PM slots
// the readers are reading without the store lock. Every read must return
// either the correct bytes or a clean miss for not-yet-committed SNs —
// never torn data from a reused slot.
func TestConcurrentGetsDuringFlush(t *testing.T) {
	cfg := TestConfig()
	cfg.SegmentSize = 512
	cfg.NumSegments = 3
	cfg.CacheBytes = 0 // force every read to the device tiers
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const total = 400
	var committed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)

	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				max := committed.Load()
				if max == 0 {
					continue
				}
				i = (i*7 + 1) % int(max)
				data, err := st.Get(colorA, sn(i+1))
				if err != nil {
					// Misses can't happen: only committed SNs are probed
					// and nothing is trimmed in this test.
					fail(err)
					return
				}
				if !bytes.Equal(data, payload(i+1)) {
					fail(errTornRead(i+1, data))
					return
				}
			}
		}(g)
	}

	for i := 1; i <= total; i++ {
		if err := st.Put(colorA, tok(i), payload(i)); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(tok(i), sn(i)); err != nil {
			t.Fatal(err)
		}
		committed.Store(int64(i))
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st.Stats().Flushes == 0 {
		t.Fatal("test never flushed a segment; shrink the config")
	}
}

type tornReadError struct {
	sn   int
	data []byte
}

func errTornRead(sn int, data []byte) error { return &tornReadError{sn, data} }
func (e *tornReadError) Error() string {
	return "torn read of sn " + string(rune('0'+e.sn%10)) + ": " + string(e.data)
}

// TestStripedCacheBehavesLikeLRU checks the striped facade preserves the
// cache contract: hits return the stored bytes, drops remove entries, and
// stats aggregate across stripes.
func TestStripedCacheBehavesLikeLRU(t *testing.T) {
	c := newStripedCache(1 << 20)
	if len(c.stripes) != cacheStripes {
		t.Fatalf("large cache has %d stripes, want %d", len(c.stripes), cacheStripes)
	}
	for i := 0; i < 500; i++ {
		c.put(colorA, sn(i+1), payload(i+1))
	}
	for i := 0; i < 500; i++ {
		data, ok := c.get(colorA, sn(i+1))
		if !ok || !bytes.Equal(data, payload(i+1)) {
			t.Fatalf("miss or wrong data for sn %d", i+1)
		}
	}
	if c.len() != 500 {
		t.Fatalf("len = %d, want 500", c.len())
	}
	c.drop(colorA, sn(3))
	if _, ok := c.get(colorA, sn(3)); ok {
		t.Fatal("dropped entry still cached")
	}
	hits, misses := c.stats()
	if hits != 500 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 500 hits / 1 miss", hits, misses)
	}

	// Tiny caches degenerate to one stripe so capacity is not fragmented.
	if tiny := newStripedCache(1024); len(tiny.stripes) != 1 {
		t.Fatalf("tiny cache has %d stripes, want 1", len(tiny.stripes))
	}
	// Disabled cache stays disabled.
	off := newStripedCache(0)
	off.put(colorA, sn(1), payload(1))
	if _, ok := off.get(colorA, sn(1)); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}
