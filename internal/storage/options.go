package storage

import (
	"fmt"

	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage/tier"
	"flexlog/internal/types"
)

// Option configures Open beyond the sizing knobs in Config: which devices
// (or Tier implementations) back the hot and cold tiers, the lifecycle
// budgets, and whether the store formats fresh media or attaches to a
// surviving layout.
type Option func(*openConfig)

type openConfig struct {
	pool      *pmem.Pool
	cold      tier.Tier
	attach    bool
	pmBudget  *uint64
	ckptEvery *int
}

// WithPMTier backs the hot tier with an existing persistent-memory pool
// (instead of allocating a fresh one from cfg.PMModel). Used by tests and
// recovery flows that re-open surviving media.
func WithPMTier(pool *pmem.Pool) Option {
	return func(oc *openConfig) { oc.pool = pool }
}

// WithSSDTier backs the cold tier with an existing SSD device, wrapped in
// the tier.SSD adapter (one blob per device file).
func WithSSDTier(dev *ssd.Device) Option {
	return func(oc *openConfig) { oc.cold = tier.NewSSD(dev) }
}

// WithColdTier backs the cold tier with an arbitrary Tier implementation —
// e.g. tier.NewLSM for a compacted, indexed cold store, or a test double.
func WithColdTier(t tier.Tier) Option {
	return func(oc *openConfig) { oc.cold = t }
}

// WithPMBudget sets Config.PMBudget (see there); as an Option it composes
// with call sites that pass a shared Config value they must not mutate.
func WithPMBudget(bytes uint64) Option {
	return func(oc *openConfig) { oc.pmBudget = &bytes }
}

// WithCheckpointEvery sets Config.CheckpointEvery (see there).
func WithCheckpointEvery(entries int) Option {
	return func(oc *openConfig) { oc.ckptEvery = &entries }
}

// WithAttach re-opens a store over media holding a previous incarnation's
// data (e.g. snapshots restored by cmd/flexlog-server): the PM slots are
// located at their canonical offsets — the same layout a fresh Open
// creates — and every volatile index is rebuilt by Recover's scan.
// Requires WithPMTier (there is nothing to attach to otherwise).
func WithAttach() Option {
	return func(oc *openConfig) { oc.attach = true }
}

// Open creates a Store per cfg and the given options. With no options it
// formats fresh devices (a pmem pool sized for cfg and an SSD cold tier);
// WithPMTier/WithSSDTier/WithColdTier substitute existing media, and
// WithAttach recovers a previous layout instead of formatting.
func Open(cfg Config, opts ...Option) (*Store, error) {
	var oc openConfig
	for _, opt := range opts {
		opt(&oc)
	}
	if oc.pmBudget != nil {
		cfg.PMBudget = *oc.pmBudget
	}
	if oc.ckptEvery != nil {
		cfg.CheckpointEvery = *oc.ckptEvery
	}
	if cfg.SegmentSize < segHeaderSize+entryHeaderSize {
		return nil, fmt.Errorf("storage: segment size %d too small", cfg.SegmentSize)
	}
	if cfg.NumSegments < 1 {
		return nil, fmt.Errorf("storage: need at least one segment")
	}
	if oc.attach && oc.pool == nil {
		return nil, fmt.Errorf("storage: WithAttach requires WithPMTier")
	}
	pool := oc.pool
	if pool == nil {
		pmSize := int(cfg.SegmentSize)*cfg.NumSegments + 64
		p, err := pmem.New(pmSize, cfg.PMModel)
		if err != nil {
			return nil, err
		}
		pool = p
	}
	cold := oc.cold
	if cold == nil {
		cold = tier.NewSSD(ssd.New(cfg.SSDModel))
	}

	st := &Store{
		cfg:         cfg,
		pm:          pool,
		cold:        cold,
		cache:       newStripedCache(cfg.CacheBytes),
		segs:        make(map[uint64]*segment),
		byToken:     make(map[types.Token]*entryLoc),
		nextSeg:     1,
		ckptTrimmed: make(map[types.ColorID]types.SN),
	}

	if oc.attach {
		// Attach path: locate the slots at their canonical offsets and
		// validate that the pool actually holds that layout.
		need := pmem.DataStart + uint64(cfg.NumSegments)*cfg.SegmentSize
		if uint64(pool.Size()) < need {
			return nil, fmt.Errorf("storage: pool of %d bytes cannot hold %d segments of %d", pool.Size(), cfg.NumSegments, cfg.SegmentSize)
		}
		if got := pool.Allocated(); got < need {
			return nil, fmt.Errorf("storage: pool allocation watermark %d below expected layout %d — not a store snapshot", got, need)
		}
		for i := 0; i < cfg.NumSegments; i++ {
			st.slots = append(st.slots, pmem.DataStart+uint64(i)*cfg.SegmentSize)
			st.slotSeg = append(st.slotSeg, nil)
		}
		if err := st.Recover(); err != nil {
			return nil, err
		}
	} else {
		// Fresh path: carve the slots out of the pool's bump allocator.
		for i := 0; i < cfg.NumSegments; i++ {
			off, err := pool.Alloc(int(cfg.SegmentSize))
			if err != nil {
				return nil, fmt.Errorf("storage: allocating slot %d: %w", i, err)
			}
			st.slots = append(st.slots, off)
			st.slotSeg = append(st.slotSeg, nil)
		}
		if err := st.newActiveSegment(); err != nil {
			return nil, err
		}
	}

	st.initObs()
	if cfg.GroupCommit {
		st.gc = newGroupCommitter(pool, st.pmTxH, st.gcWindowH)
	}
	if cfg.PMBudget > 0 || cfg.CheckpointEvery > 0 {
		st.lc = newLifecycle(st, cfg.LifecycleInterval)
	}
	return st, nil
}
