package storage

import "flexlog/internal/types"

// cacheStripes is the number of independently locked LRU stripes of the
// DRAM tier. One mutex over the whole cache made every concurrent read of
// the store contend on cache bookkeeping even on hits; striping by
// (color, SN) lets the read lane's workers hit the cache in parallel.
// Each stripe runs its own LRU — eviction is approximate global LRU,
// which is fine for a cache.
const cacheStripes = 16

// stripedCache shards the DRAM cache (§5.2) across cacheStripes lruCaches.
// Cache hits return the stored slice without copying; entries are replaced
// wholesale, never mutated, so the shared backing array is safe to hand
// out (zero-copy serving).
type stripedCache struct {
	stripes []*lruCache
}

// newStripedCache splits capacityBytes evenly across the stripes. Small
// caches (where a per-stripe share could not hold one typical record)
// degenerate to a single stripe so capacity semantics stay intact.
func newStripedCache(capacityBytes int) *stripedCache {
	n := cacheStripes
	if capacityBytes < 64<<10 {
		n = 1
	}
	c := &stripedCache{stripes: make([]*lruCache, n)}
	for i := range c.stripes {
		c.stripes[i] = newLRUCache(capacityBytes / n)
	}
	return c
}

func (c *stripedCache) stripe(color types.ColorID, sn types.SN) *lruCache {
	if len(c.stripes) == 1 {
		return c.stripes[0]
	}
	h := uint64(color)*0x9E3779B97F4A7C15 + uint64(sn)
	h ^= h >> 29
	return c.stripes[h%uint64(len(c.stripes))]
}

func (c *stripedCache) get(color types.ColorID, sn types.SN) ([]byte, bool) {
	return c.stripe(color, sn).get(color, sn)
}

func (c *stripedCache) put(color types.ColorID, sn types.SN, data []byte) {
	c.stripe(color, sn).put(color, sn, data)
}

func (c *stripedCache) drop(color types.ColorID, sn types.SN) {
	c.stripe(color, sn).drop(color, sn)
}

func (c *stripedCache) stats() (hits, misses uint64) {
	for _, s := range c.stripes {
		h, m := s.stats()
		hits += h
		misses += m
	}
	return hits, misses
}

func (c *stripedCache) len() int {
	n := 0
	for _, s := range c.stripes {
		n += s.len()
	}
	return n
}
