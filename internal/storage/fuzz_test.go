package storage

import (
	"testing"
)

// FuzzScanSegment feeds arbitrary bytes to the segment scanner: it must
// reject or parse, never panic or over-read.
func FuzzScanSegment(f *testing.F) {
	// Seeds: valid empty segment, truncated, and a real single-entry image.
	valid := make([]byte, 64)
	valid[0] = segHeaderSize
	valid[8] = 1
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	st, err := New(TestConfig())
	if err == nil {
		st.Put(1, tok(1), payload(1))
		img := make([]byte, 256)
		st.pm.Read(st.slots[0], img)
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		_ = scanSegment(raw, func(off uint64, e decodedEntry, data []byte) error {
			_ = data
			return nil
		})
	})
}

// FuzzBatchSpans feeds arbitrary payloads to the batch framing decoder.
func FuzzBatchSpans(f *testing.F) {
	f.Add(encodeBatch([][]byte{[]byte("a"), {}, []byte("ccc")}))
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, payload []byte) {
		spans, err := batchSpans(payload)
		if err != nil {
			return
		}
		for _, sp := range spans {
			if int(sp.off)+int(sp.len) > len(payload) {
				t.Fatalf("span [%d,%d) beyond payload %d", sp.off, sp.off+sp.len, len(payload))
			}
		}
	})
}
