package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"flexlog/internal/types"
)

// Checkpoints bound the recovery replay suffix (the linear cost of Fig. 10):
// a checkpoint is a cold-tier blob ("ckpt-<seq>") holding the volatile
// metadata that a full scan of the flushed segments would otherwise rebuild —
// per-color trim/maxSN watermarks plus, for every flushed segment, the
// location metadata of its live entries and the trim markers persisted
// inside it. Recovery restores the covered segments from this metadata
// (no blob reads) and only scans the PM slots and the cold segments flushed
// after the checkpoint, so the replay length tracks the checkpoint interval
// instead of the log length.
//
// Durability protocol: the blob is written and synced before any volatile
// state advances; older checkpoint blobs are deleted only after the new one
// is durable. A crash mid-write leaves a torn blob that decode rejects, and
// recovery falls back to the previous checkpoint.
//
// Safety of the per-segment trim markers: a marker is persisted before the
// trim is applied to the color's volatile watermark, so every checkpoint
// written after the store observed the marker has floors >= the marker.
// Cold GC therefore may delete a fully-dead covered segment (its markers
// survive inside the checkpoint), and a later checkpoint that no longer
// lists the segment still subsumes its markers via the color floors.

const (
	ckptMagic   = 0x50384346 // "FC8P"
	ckptVersion = 1
)

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%d", seq) }

// ckptImage is the decoded form of a checkpoint blob.
type ckptImage struct {
	seq    uint64
	colors map[types.ColorID]ckptColor
	segs   []ckptSeg
}

type ckptColor struct {
	trimmed types.SN
	maxSN   types.SN
}

type ckptSeg struct {
	id      uint64
	used    uint64
	entries []ckptEntry
	marks   []trimMark
}

type ckptEntry struct {
	token      types.Token
	color      types.ColorID
	off        uint64
	payloadLen int
	firstSN    types.SN
	spans      []recSpan
}

// RecoveryStats describes what the last Recover did — the observable half
// of the checkpoint contract (the ablate-tiering experiment asserts the
// replayed suffix stays flat as the log grows).
type RecoveryStats struct {
	CheckpointSeq   uint64 // sequence of the checkpoint restored from (0: none)
	RestoredEntries int    // entries restored from checkpoint metadata, no blob read
	CoveredSegments int    // flushed segments covered by the checkpoint
	ScannedSegments int    // segment images scanned (PM slots + uncovered blobs)
	ReplayedEntries int    // entries replayed from scanned images
	ReplayedBytes   uint64 // bytes of segment images scanned
	MissingBlobs    int    // uncovered cold blobs absent or unreadable (skipped)
}

// LastRecovery returns what the most recent Recover (or attach) replayed.
func (st *Store) LastRecovery() RecoveryStats {
	st.alloc.RLock()
	defer st.alloc.RUnlock()
	return st.lastRecovery
}

// writeCheckpoint snapshots the store and makes a new checkpoint durable.
// When force is false the write is skipped unless CheckpointEvery entries
// have been flushed since the last checkpoint. Serialized by st.ckptMu.
func (st *Store) writeCheckpoint(force bool) error {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()

	// Per-color floors first (lock order: color locks strictly before the
	// allocator lock). Each color is snapshotted under its own read lock,
	// so an in-flight trim is either fully included or fully excluded —
	// and if excluded, its marker is in a segment this checkpoint cannot
	// cover, so recovery replays it.
	colors := make(map[types.ColorID]ckptColor)
	st.colors.Range(func(k, v any) bool {
		ci := v.(*colorIndex)
		ci.mu.RLock()
		colors[k.(types.ColorID)] = ckptColor{trimmed: ci.trimmed, maxSN: ci.maxSN}
		ci.mu.RUnlock()
		return true
	})

	st.alloc.RLock()
	if !force && (st.cfg.CheckpointEvery <= 0 || st.uncovered < uint64(st.cfg.CheckpointEvery)) {
		st.alloc.RUnlock()
		return nil
	}
	seq := st.ckptSeq + 1
	coveredAtSnap := st.uncovered
	img := ckptImage{seq: seq, colors: colors}
	for _, seg := range st.segs {
		if !seg.flushed() {
			continue
		}
		cs := ckptSeg{id: seg.id, used: seg.used, marks: append([]trimMark(nil), seg.trimMarks...)}
		for _, tok := range seg.tokens {
			loc := st.byToken[tok]
			if loc == nil || loc.seg != seg || loc.dead.Load() {
				continue
			}
			first := loc.first()
			if !first.Valid() {
				continue // flushed segments hold no uncommitted entries
			}
			cs.entries = append(cs.entries, ckptEntry{
				token: loc.token, color: loc.color, off: loc.off,
				payloadLen: loc.payloadLen, firstSN: first, spans: loc.spans,
			})
		}
		img.segs = append(img.segs, cs)
	}
	prior := st.ckptSeq
	st.alloc.RUnlock()
	sort.Slice(img.segs, func(i, j int) bool { return img.segs[i].id < img.segs[j].id })

	entries := 0
	covered := make(map[uint64]bool, len(img.segs))
	for _, s := range img.segs {
		entries += len(s.entries)
		covered[s.id] = true
	}

	start := time.Now()
	if err := st.cold.Put(ckptName(seq), encodeCheckpoint(&img)); err != nil {
		return err
	}
	if st.failpoint.CompareAndSwap(uint32(CrashMidCheckpoint), 0) {
		st.Crash()
		return ErrInjectedCrash
	}
	if err := st.cold.Sync(); err != nil {
		return err
	}
	st.checkpointH.Since(start)

	st.alloc.Lock()
	st.ckptSeq = seq
	st.checkpoints++
	st.ckptEntries = entries
	st.ckptCovered = covered
	st.ckptTrimmed = make(map[types.ColorID]types.SN, len(colors))
	for c, cc := range colors {
		st.ckptTrimmed[c] = cc.trimmed
	}
	// Entries flushed after the snapshot stay uncovered.
	if st.uncovered >= coveredAtSnap {
		st.uncovered -= coveredAtSnap
	} else {
		st.uncovered = 0
	}
	st.alloc.Unlock()

	// Only now is it safe to drop the older checkpoints (incl. seq prior).
	for _, name := range st.cold.List() {
		var old uint64
		if _, err := fmt.Sscanf(name, "ckpt-%d", &old); err == nil && old <= prior {
			if err := st.cold.Delete(name); err != nil {
				return err
			}
		}
	}
	return st.cold.Sync()
}

// loadCheckpoint returns the newest parsable checkpoint on the cold tier,
// or nil when none exists (including when every candidate is torn — a crash
// mid-checkpoint leaves the previous one in place, so a torn newest blob
// just falls back one sequence).
func (st *Store) loadCheckpoint() *ckptImage {
	var seqs []uint64
	for _, name := range st.cold.List() {
		var seq uint64
		if _, err := fmt.Sscanf(name, "ckpt-%d", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		sz, err := st.cold.Size(ckptName(seq))
		if err != nil {
			continue
		}
		raw := make([]byte, sz)
		if err := st.cold.Get(ckptName(seq), 0, raw); err != nil {
			continue
		}
		if img, err := decodeCheckpoint(raw); err == nil {
			return img
		}
	}
	return nil
}

// encodeCheckpoint serializes an image (little-endian, crc32 trailer).
func encodeCheckpoint(img *ckptImage) []byte {
	var out []byte
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	u32(ckptMagic)
	u32(ckptVersion)
	u64(img.seq)
	// Colors in sorted order so the blob is deterministic.
	colorIDs := make([]types.ColorID, 0, len(img.colors))
	for c := range img.colors {
		colorIDs = append(colorIDs, c)
	}
	sort.Slice(colorIDs, func(i, j int) bool { return colorIDs[i] < colorIDs[j] })
	u32(uint32(len(colorIDs)))
	for _, c := range colorIDs {
		cc := img.colors[c]
		u32(uint32(c))
		u64(uint64(cc.trimmed))
		u64(uint64(cc.maxSN))
	}
	u32(uint32(len(img.segs)))
	for _, s := range img.segs {
		u64(s.id)
		u64(s.used)
		u32(uint32(len(s.entries)))
		u32(uint32(len(s.marks)))
		for _, e := range s.entries {
			u64(uint64(e.token))
			u32(uint32(e.color))
			u64(e.off)
			u32(uint32(e.payloadLen))
			u64(uint64(e.firstSN))
			u32(uint32(len(e.spans)))
			for _, sp := range e.spans {
				u32(sp.off)
				u32(sp.len)
			}
		}
		for _, m := range s.marks {
			u32(uint32(m.color))
			u64(uint64(m.sn))
		}
	}
	u32(crc32.ChecksumIEEE(out))
	return out
}

// decodeCheckpoint parses a checkpoint blob, rejecting torn or corrupt ones.
func decodeCheckpoint(raw []byte) (*ckptImage, error) {
	if len(raw) < 4+4+8+4 {
		return nil, fmt.Errorf("storage: checkpoint too small (%d bytes)", len(raw))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("storage: checkpoint crc mismatch")
	}
	off := 0
	fail := fmt.Errorf("storage: truncated checkpoint")
	u32 := func() (uint32, error) {
		if off+4 > len(body) {
			return 0, fail
		}
		v := binary.LittleEndian.Uint32(body[off : off+4])
		off += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, fail
		}
		v := binary.LittleEndian.Uint64(body[off : off+8])
		off += 8
		return v, nil
	}
	magic, err := u32()
	if err != nil || magic != ckptMagic {
		return nil, fmt.Errorf("storage: not a checkpoint blob")
	}
	ver, err := u32()
	if err != nil || ver != ckptVersion {
		return nil, fmt.Errorf("storage: unsupported checkpoint version %d", ver)
	}
	img := &ckptImage{colors: make(map[types.ColorID]ckptColor)}
	if img.seq, err = u64(); err != nil {
		return nil, err
	}
	nColors, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nColors; i++ {
		c, e1 := u32()
		tr, e2 := u64()
		mx, e3 := u64()
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, fail
		}
		img.colors[types.ColorID(c)] = ckptColor{trimmed: types.SN(tr), maxSN: types.SN(mx)}
	}
	nSegs, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nSegs; i++ {
		var s ckptSeg
		var e1, e2 error
		if s.id, e1 = u64(); e1 != nil {
			return nil, e1
		}
		if s.used, e1 = u64(); e1 != nil {
			return nil, e1
		}
		nEntries, e1 := u32()
		nMarks, e2 := u32()
		if e1 != nil || e2 != nil {
			return nil, fail
		}
		for j := uint32(0); j < nEntries; j++ {
			var en ckptEntry
			tok, e1 := u64()
			col, e2 := u32()
			eo, e3 := u64()
			pl, e4 := u32()
			fsn, e5 := u64()
			nSpans, e6 := u32()
			if e1 != nil || e2 != nil || e3 != nil || e4 != nil || e5 != nil || e6 != nil {
				return nil, fail
			}
			en.token = types.Token(tok)
			en.color = types.ColorID(col)
			en.off = eo
			en.payloadLen = int(pl)
			en.firstSN = types.SN(fsn)
			if uint64(nSpans) > uint64(len(body))/8 {
				return nil, fail
			}
			for k := uint32(0); k < nSpans; k++ {
				so, e1 := u32()
				sl, e2 := u32()
				if e1 != nil || e2 != nil {
					return nil, fail
				}
				en.spans = append(en.spans, recSpan{off: so, len: sl})
			}
			s.entries = append(s.entries, en)
		}
		for j := uint32(0); j < nMarks; j++ {
			c, e1 := u32()
			sn, e2 := u64()
			if e1 != nil || e2 != nil {
				return nil, fail
			}
			s.marks = append(s.marks, trimMark{color: types.ColorID(c), sn: types.SN(sn)})
		}
		img.segs = append(img.segs, s)
	}
	if off != len(body) {
		return nil, fmt.Errorf("storage: %d trailing bytes in checkpoint", len(body)-off)
	}
	return img, nil
}
