package storage

import (
	"sync"

	"flexlog/internal/types"
)

// cacheKey identifies a committed record in the DRAM cache.
type cacheKey struct {
	color types.ColorID
	sn    types.SN
}

// lruCache is the volatile DRAM tier of the replica storage stack (§5.2):
// it holds recently accessed committed records and is consulted before PM.
// Capacity is accounted in payload bytes. The zero value is unusable; use
// newLRUCache. A capacity of 0 disables caching entirely (used by the
// cache-ablation bench).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	size     int
	entries  map[cacheKey]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used

	hits, misses uint64
}

type lruNode struct {
	key        cacheKey
	data       []byte
	prev, next *lruNode
}

func newLRUCache(capacityBytes int) *lruCache {
	return &lruCache{
		capacity: capacityBytes,
		entries:  make(map[cacheKey]*lruNode),
	}
}

// get returns the cached payload and whether it was present.
func (c *lruCache) get(color types.ColorID, sn types.SN) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[cacheKey{color, sn}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(n)
	return n.data, true
}

// put inserts (or refreshes) a record, evicting the oldest entries (§5.2:
// "if the cache size limit is reached, the oldest record is evicted").
func (c *lruCache) put(color types.ColorID, sn types.SN, data []byte) {
	if c.capacity <= 0 || len(data) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{color, sn}
	if n, ok := c.entries[key]; ok {
		c.size += len(data) - len(n.data)
		n.data = data
		c.moveToFront(n)
	} else {
		n := &lruNode{key: key, data: data}
		c.entries[key] = n
		c.pushFront(n)
		c.size += len(data)
	}
	for c.size > c.capacity && c.tail != nil {
		c.evict(c.tail)
	}
}

// drop removes a record (used by trim).
func (c *lruCache) drop(color types.ColorID, sn types.SN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[cacheKey{color, sn}]; ok {
		c.evict(n)
	}
}

// stats returns hit/miss counters.
func (c *lruCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lruCache) evict(n *lruNode) {
	c.unlink(n)
	delete(c.entries, n.key)
	c.size -= len(n.data)
}
