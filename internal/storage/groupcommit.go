package storage

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/pmem"
)

// ErrCommitterClosed is returned for writes submitted after Close.
var ErrCommitterClosed = errors.New("storage: group committer closed")

// groupCommitter is the PM group-commit engine (§5.2 sizing argument: PM
// latency, not software serialization, should bound append throughput).
// Concurrent PutBatch/Commit callers submit their PM writes and block on a
// per-op done channel; a single committer goroutine drains whatever
// accumulated while the previous window was in flight and folds it into
// ONE pmem transaction — the classic group commit, amortizing the
// per-transaction overhead (undo-log snapshot + flush) across the window.
//
// Two further write reductions fall out of the window shape:
//
//   - contiguous fusion: entries reserved back-to-back in the same segment
//     occupy adjacent PM ranges, so their payload writes merge into one
//     tx.Put (one undo snapshot + one data write instead of N of each);
//   - watermark folding: each segment's used-bytes watermark is written
//     once per window, at its final value, instead of once per entry.
//
// Correctness of the watermark relies on ordering: ops are enqueued in
// reservation order (the callers hold the allocator lock across submit),
// the channel is FIFO and there is a single committer, so a watermark
// value is only made durable in the same transaction as — or after — every
// entry it covers. A crash mid-window rolls the whole window back via the
// pmem undo log: every caller in the window is still blocked (no ack was
// sent), so nothing acknowledged is lost.
type groupCommitter struct {
	pm *pmem.Pool
	ch chan gcOp

	closeMu sync.RWMutex
	closed  bool
	done    chan struct{}

	windows atomic.Uint64 // transactions committed
	ops     atomic.Uint64 // writes submitted
	fused   atomic.Uint64 // payload writes saved by contiguous fusion

	txH     *obs.Histogram // PM transaction latency (nil-safe)
	windowH *obs.Histogram // full window latency: first op dequeued → waiters released
}

// gcOp is one submitted PM write: the entry (or SN-rewrite) bytes plus an
// optional watermark update for the segment that received the entry.
type gcOp struct {
	off   uint64 // absolute PM offset of the write
	buf   []byte
	hasWM bool   // append ops advance their segment's watermark
	wmOff uint64 // segment base offset (the watermark cell)
	wmVal uint64 // watermark value after this entry
	done  chan error
}

// maxWindow bounds ops folded into one transaction, so a burst cannot
// build an unboundedly large undo log.
const maxWindow = 512

func newGroupCommitter(pm *pmem.Pool, txH, windowH *obs.Histogram) *groupCommitter {
	g := &groupCommitter{pm: pm, ch: make(chan gcOp, 4096), done: make(chan struct{}),
		txH: txH, windowH: windowH}
	go g.loop()
	return g
}

// submit enqueues one write and returns a wait function that blocks until
// the write's window is durable (or failed). Submitting under the
// allocator lock and waiting after releasing it is what lets concurrent
// callers share a window.
func (g *groupCommitter) submit(off uint64, buf []byte, hasWM bool, wmOff, wmVal uint64) func() error {
	op := gcOp{off: off, buf: buf, hasWM: hasWM, wmOff: wmOff, wmVal: wmVal, done: make(chan error, 1)}
	g.closeMu.RLock()
	if g.closed {
		g.closeMu.RUnlock()
		return func() error { return ErrCommitterClosed }
	}
	g.ops.Add(1)
	g.ch <- op
	g.closeMu.RUnlock()
	return func() error { return <-op.done }
}

func (g *groupCommitter) loop() {
	defer close(g.done)
	for first := range g.ch {
		windowStart := time.Now()
		window := []gcOp{first}
	drain:
		for len(window) < maxWindow {
			select {
			case op, ok := <-g.ch:
				if !ok {
					break drain
				}
				window = append(window, op)
			default:
				break drain
			}
		}
		err := g.commitWindow(window)
		for _, op := range window {
			op.done <- err
		}
		g.windowH.Since(windowStart)
	}
	// Channel closed: the range loop above has already drained and
	// committed every op buffered before close().
}

// commitWindow folds the window into one transaction.
func (g *groupCommitter) commitWindow(window []gcOp) error {
	txStart := time.Now()
	defer g.txH.Since(txStart)
	tx, err := g.pm.Begin()
	if err != nil {
		return err
	}
	// Contiguous fusion: merge runs of ops whose PM ranges are adjacent in
	// submission order (back-to-back reservations in one segment).
	for i := 0; i < len(window); {
		j := i + 1
		total := len(window[i].buf)
		for j < len(window) && window[j].off == window[j-1].off+uint64(len(window[j-1].buf)) {
			total += len(window[j].buf)
			j++
		}
		buf := window[i].buf
		if j-i > 1 {
			fused := make([]byte, 0, total)
			for k := i; k < j; k++ {
				fused = append(fused, window[k].buf...)
			}
			buf = fused
			g.fused.Add(uint64(j - i - 1))
		}
		if err := tx.Put(window[i].off, buf); err != nil {
			tx.Abort()
			return err
		}
		i = j
	}
	// Watermark folding: one write per segment, at the window's final
	// value (ops are in reservation order, so the last value is the max).
	wmOrder := make([]uint64, 0, 4)
	wmVal := make(map[uint64]uint64, 4)
	for _, op := range window {
		if !op.hasWM {
			continue
		}
		if _, seen := wmVal[op.wmOff]; !seen {
			wmOrder = append(wmOrder, op.wmOff)
		}
		wmVal[op.wmOff] = op.wmVal
	}
	var wm [8]byte
	for _, off := range wmOrder {
		binary.LittleEndian.PutUint64(wm[:], wmVal[off])
		if err := tx.Put(off, wm[:]); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	g.windows.Add(1)
	return nil
}

// close stops the committer after draining queued ops. Idempotent.
func (g *groupCommitter) close() {
	g.closeMu.Lock()
	if g.closed {
		g.closeMu.Unlock()
		return
	}
	g.closed = true
	g.closeMu.Unlock()
	close(g.ch)
	<-g.done
}

// GCStats reports group-commit counters.
type GCStats struct {
	Windows uint64 // PM transactions committed
	Ops     uint64 // writes submitted
	Fused   uint64 // payload writes saved by contiguous fusion
}

func (g *groupCommitter) stats() GCStats {
	return GCStats{Windows: g.windows.Load(), Ops: g.ops.Load(), Fused: g.fused.Load()}
}
