package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flexlog/internal/types"
)

func TestPutBatchCommitRange(t *testing.T) {
	st := newTestStore(t)
	records := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	if err := st.PutBatch(colorA, tok(1), records); err != nil {
		t.Fatal(err)
	}
	// Per Alg. 1, the sequencer returns the LAST SN of the batch.
	if err := st.Commit(tok(1), sn(7)); err != nil {
		t.Fatal(err)
	}
	for i, want := range records {
		got, err := st.Get(colorA, sn(5+i))
		if err != nil {
			t.Fatalf("get sn(%d): %v", 5+i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
	if st.MaxSN(colorA) != sn(7) {
		t.Fatalf("maxSN = %v", st.MaxSN(colorA))
	}
	last, ok := st.TokenSN(tok(1))
	if !ok || last != sn(7) {
		t.Fatalf("TokenSN = %v, %v", last, ok)
	}
}

func TestPutBatchEmptyRejected(t *testing.T) {
	st := newTestStore(t)
	if err := st.PutBatch(colorA, tok(1), nil); err == nil {
		t.Fatal("empty batch should be rejected")
	}
}

func TestCommitBatchSNTooSmall(t *testing.T) {
	st := newTestStore(t)
	st.PutBatch(colorA, tok(1), [][]byte{[]byte("a"), []byte("b"), []byte("c")})
	// lastSN counter 2 cannot hold a 3-record batch starting at counter >= 0.
	if err := st.Commit(tok(1), types.MakeSN(1, 2)); err == nil {
		t.Fatal("undersized SN should be rejected")
	}
}

func TestBatchPartialTrim(t *testing.T) {
	st := newTestStore(t)
	st.PutBatch(colorA, tok(1), [][]byte{[]byte("a"), []byte("b"), []byte("c")})
	st.Commit(tok(1), sn(3)) // occupies sns 1..3
	st.Trim(colorA, sn(2))
	if _, err := st.Get(colorA, sn(1)); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("sn1 after trim: %v", err)
	}
	if _, err := st.Get(colorA, sn(2)); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("sn2 after trim: %v", err)
	}
	got, err := st.Get(colorA, sn(3))
	if err != nil || string(got) != "c" {
		t.Fatalf("sn3 after trim = %q, %v", got, err)
	}
}

func TestBatchSurvivesRecovery(t *testing.T) {
	st, _ := New(smallConfig())
	st.PutBatch(colorA, tok(1), [][]byte{[]byte("aa"), []byte("bb")})
	st.Commit(tok(1), sn(2))
	st.PutBatch(colorA, tok(2), [][]byte{[]byte("cc"), []byte("dd")}) // uncommitted
	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"aa", "bb"} {
		got, err := st.Get(colorA, sn(i+1))
		if err != nil || string(got) != want {
			t.Fatalf("sn(%d) = %q, %v", i+1, got, err)
		}
	}
	un := st.Uncommitted()
	if len(un) != 1 || un[0].Token != tok(2) || len(un[0].Records) != 2 {
		t.Fatalf("uncommitted after recovery = %+v", un)
	}
	if string(un[0].Records[1]) != "dd" {
		t.Fatalf("uncommitted payload = %q", un[0].Records[1])
	}
}

// Property: batch framing round-trips arbitrary record sets.
func TestBatchFramingRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		if len(recs) == 0 {
			recs = [][]byte{{}}
		}
		payload := encodeBatch(recs)
		spans, err := batchSpans(payload)
		if err != nil || len(spans) != len(recs) {
			return false
		}
		for i, sp := range spans {
			if !bytes.Equal(payload[sp.off:sp.off+sp.len], recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSpansCorrupt(t *testing.T) {
	if _, err := batchSpans([]byte{1, 2}); err == nil {
		t.Error("short payload should fail")
	}
	// count=1 but no length field
	if _, err := batchSpans([]byte{1, 0, 0, 0}); err == nil {
		t.Error("missing length should fail")
	}
	// length larger than payload
	if _, err := batchSpans([]byte{1, 0, 0, 0, 255, 0, 0, 0}); err == nil {
		t.Error("overlong record should fail")
	}
}

func TestZeroLengthRecordInBatch(t *testing.T) {
	st := newTestStore(t)
	if err := st.PutBatch(colorA, tok(1), [][]byte{{}, []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(tok(1), sn(2)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(colorA, sn(1))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty record = %q, %v", got, err)
	}
}
