package storage

import (
	"bytes"
	"strings"
	"testing"

	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/types"
)

// TestScanRejectsCorruptPayload: recovery must detect a flipped bit in a
// record payload through the per-entry CRC rather than serve garbage.
func TestScanRejectsCorruptPayload(t *testing.T) {
	cfg := smallConfig()
	pool, err := pmem.New(int(cfg.SegmentSize)*cfg.NumSegments+64, pmem.Zero())
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(ssd.Zero())
	st, err := NewWithDevices(cfg, pool, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, types.MakeToken(1, 1), []byte("precious data")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte behind the store's back (simulated media
	// corruption that PMDK would not catch).
	snap := pool.Snapshot()
	idx := bytes.Index(snap, []byte("precious"))
	if idx < 0 {
		t.Fatal("payload not found in arena")
	}
	var flip [1]byte
	flip[0] = snap[idx] ^ 0xFF
	if err := pool.Write(uint64(idx), flip[:]); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	err = st.Recover()
	if err == nil {
		t.Fatal("recovery accepted corrupt payload")
	}
	if !strings.Contains(err.Error(), "crc") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestScanRejectsTornWatermark: a watermark beyond the image must fail
// scanning instead of reading out of bounds.
func TestScanSegmentBounds(t *testing.T) {
	if err := scanSegment([]byte{1, 2, 3}, nil); err == nil {
		t.Fatal("short image accepted")
	}
	// Watermark says 100 bytes used but the image has 16.
	img := make([]byte, segHeaderSize)
	img[0] = 100
	if err := scanSegment(img, nil); err == nil {
		t.Fatal("overlong watermark accepted")
	}
	// Truncated entry header.
	img2 := make([]byte, 64)
	img2[0] = 40 // used=40: header(16) + 24 bytes < entryHeaderSize
	if err := scanSegment(img2, func(off uint64, e decodedEntry, data []byte) error { return nil }); err == nil {
		t.Fatal("truncated entry header accepted")
	}
}

// TestFlushedSegmentServesAfterRecovery: records flushed to the SSD tier
// must survive crash+recovery and read identically from the flushed file.
func TestFlushedSegmentServesAfterRecovery(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 0 // force device reads
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 120 // enough to force SSD flushes with 512-byte segments
	for i := 1; i <= n; i++ {
		if err := st.Put(colorA, tok(i), payload(i)); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(tok(i), sn(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Flushes == 0 {
		t.Fatal("no flushes happened; test is vacuous")
	}
	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil {
			t.Fatalf("get %d after recovery: %v", i, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
}

// TestTrimReclaimsDeadSegmentsWithoutSSDWrites: a fully-trimmed PM
// segment is reused directly (no flush), keeping trim cheap.
func TestTrimReclaimsDeadSegmentsWithoutSSDWrites(t *testing.T) {
	cfg := smallConfig()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill and trim in waves far beyond PM capacity: with reclamation,
	// SSD flushes stay rare even though total volume exceeds PM many
	// times over. Each wave fits inside the free slots (2 of 3 segments)
	// so the trim always lands before PM pressure forces a flush.
	const waves, per = 20, 15
	snc := uint32(0)
	for w := 0; w < waves; w++ {
		for i := 0; i < per; i++ {
			snc++
			if err := st.Put(colorA, types.MakeToken(2, snc), payload(int(snc))); err != nil {
				t.Fatalf("wave %d put: %v", w, err)
			}
			if err := st.Commit(types.MakeToken(2, snc), types.MakeSN(1, snc)); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := st.Trim(colorA, types.MakeSN(1, snc)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.SSD.Writes > 4 {
		t.Fatalf("trim-heavy workload still flushed %d times to SSD", stats.SSD.Writes)
	}
	// The token index must not leak dead entries without bound.
	if stats.Records > 2*per+5 {
		t.Fatalf("token index retains %d entries after trims", stats.Records)
	}
}

// TestWriteOnceSemantics: a committed record can never be overwritten —
// the Write-Once-Read-Many definition of §4.
func TestWriteOnceSemantics(t *testing.T) {
	st := newTestStore(t)
	st.Put(colorA, tok(1), payload(1))
	st.Commit(tok(1), sn(5))
	// A different token claiming the same SN: last write must NOT win —
	// the index keeps the first record.
	st.Put(colorA, tok(2), payload(2))
	if err := st.Commit(tok(2), sn(5)); err != nil {
		// Acceptable: implementation may reject outright.
		t.Logf("conflicting commit rejected: %v", err)
	}
	got, err := st.Get(colorA, sn(5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(1)) {
		t.Fatalf("committed record overwritten: %q", got)
	}
}

// TestAttachRestoresFromSnapshots: save both device tiers, rebuild a store
// via Attach, and verify the full dataset — the cmd/flexlog-server restart
// path.
func TestAttachRestoresFromSnapshots(t *testing.T) {
	cfg := smallConfig()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 80 // enough for SSD flushes with 512-byte segments
	for i := 1; i <= n; i++ {
		st.Put(colorA, tok(i), payload(i))
		st.Commit(tok(i), sn(i))
	}
	st.Put(colorB, tok(500), payload(500)) // uncommitted survivor
	dir := t.TempDir()
	if err := st.SaveDevices(dir+"/pm", dir+"/ssd"); err != nil {
		t.Fatal(err)
	}

	pool, err := pmem.LoadFrom(dir+"/pm", pmem.Zero())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ssd.LoadFrom(dir+"/ssd", ssd.Zero())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Attach(cfg, pool, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		got, err := st2.Get(colorA, sn(i))
		if err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("restored get %d = %q, %v", i, got, err)
		}
	}
	un := st2.Uncommitted()
	if len(un) != 1 || un[0].Token != tok(500) {
		t.Fatalf("uncommitted after attach = %v", un)
	}
	// The restored store accepts new work.
	if err := st2.Put(colorB, tok(600), payload(600)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Commit(tok(600), types.MakeSN(1, 600)); err != nil {
		t.Fatal(err)
	}
}

// TestAttachRejectsNonSnapshots: attaching to an empty pool must fail fast
// rather than serve garbage.
func TestAttachRejectsNonSnapshots(t *testing.T) {
	cfg := smallConfig()
	pool, _ := pmem.New(int(cfg.SegmentSize)*cfg.NumSegments+64, pmem.Zero())
	if _, err := Attach(cfg, pool, ssd.New(ssd.Zero())); err == nil {
		t.Fatal("attach to a virgin pool should fail (no layout)")
	}
	tiny, _ := pmem.New(64, pmem.Zero())
	if _, err := Attach(cfg, tiny, ssd.New(ssd.Zero())); err == nil {
		t.Fatal("attach to an undersized pool should fail")
	}
}
