// Package storage implements the replica storage stack of FlexLog (§5.2):
// a volatile DRAM cache on top of a crash-consistent persistent-memory log,
// with an SSD tier that absorbs the oldest part of the log when PM fills up.
//
// Writes land in PM (and the cache); reads consult the cache, then PM, then
// the SSD. The PM log is segmented; when no PM segment slot is free, the
// oldest fully-committed segment is flushed verbatim to the SSD and its slot
// is reused. Recovery rebuilds all volatile indexes by scanning the PM slots
// and flushed SSD segments — the linear cost measured by the paper's Fig. 10.
//
// One storage entry corresponds to one append batch (Alg. 1's records[]):
// the batch is framed into a single crash-consistent entry and, once the
// ordering layer assigns the batch its SN range, each record is indexed at
// its own sequence number.
//
// Concurrency model (the parallel write path): the store is sharded by
// color. Each color's volatile index (bySN, maxSN, trimmed) has its own
// RWMutex, so commits, trims and reads of different colors never contend.
// A narrow allocator lock (st.alloc) guards the shared segment machinery:
// slot table, active segment, the token index, and segment bookkeeping.
// Lock order is color lock → allocator lock; nothing acquires a color lock
// while holding the allocator lock (Crash/Recover, which need both, take
// every color lock first). Mutable per-entry state (firstSN, liveCount,
// dead) and the per-segment slot/live fields are atomics: they are written
// under the owning color's lock but read lock-free from allocator paths.
// With Config.GroupCommit set, PM writes additionally flow through a
// group-commit engine (see groupcommit.go) instead of paying one pmem
// transaction each.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage/tier"
	"flexlog/internal/types"
)

var (
	// ErrNotFound is returned when no committed record has the given SN.
	ErrNotFound = errors.New("storage: record not found")
	// ErrTrimmed is returned when the requested SN was garbage collected.
	ErrTrimmed = errors.New("storage: record trimmed")
	// ErrDuplicateToken is returned when a token was already persisted.
	ErrDuplicateToken = errors.New("storage: duplicate token")
	// ErrUnknownToken is returned by Commit for a token never persisted.
	ErrUnknownToken = errors.New("storage: unknown token")
	// ErrOutOfSpace is returned when PM is full and nothing can be flushed.
	ErrOutOfSpace = errors.New("storage: out of space")
	// ErrEvicted is returned when a record's segment was evicted to the
	// cold tier and the cold copy could not be read (the tier is crashed
	// or the blob is gone). The condition is transient across recovery;
	// the replica read path retries before reporting it to clients.
	ErrEvicted = errors.New("storage: record evicted and cold tier unreadable")
	// ErrCheckpointTruncated qualifies ErrTrimmed: the SN lies at or below
	// the recovery floor of the checkpoint this store restored from, so
	// the record is gone even if its trim marker was never replayed.
	ErrCheckpointTruncated = errors.New("storage: record below checkpoint recovery floor")
)

// errCheckpointTrimmed matches both ErrTrimmed (the long-standing miss
// sentinel) and ErrCheckpointTruncated (the cause).
var errCheckpointTrimmed = fmt.Errorf("%w (%w)", ErrTrimmed, ErrCheckpointTruncated)

// Config sizes the storage stack.
type Config struct {
	SegmentSize uint64 // bytes per PM segment (including 16-byte header)
	NumSegments int    // PM slots
	CacheBytes  int    // DRAM cache capacity; 0 disables the cache
	GroupCommit bool   // fold concurrent PM writes into shared transactions
	PMModel     pmem.LatencyModel
	SSDModel    ssd.LatencyModel

	// PMBudget bounds the PM bytes occupied by log segments: when the
	// resident set exceeds it, the background lifecycle evicts the oldest
	// fully-committed segments to the cold tier. 0 disables proactive
	// eviction (PM still spills on-demand when every slot is full).
	PMBudget uint64
	// CheckpointEvery triggers a checkpoint after that many entries have
	// been flushed to the cold tier since the last one, bounding the
	// recovery replay suffix. 0 disables checkpointing.
	CheckpointEvery int
	// LifecycleInterval is the background lifecycle tick (eviction, cold
	// GC, checkpointing). 0 defaults to 10ms when the lifecycle is active.
	LifecycleInterval time.Duration

	// Obs, when set, publishes the store's counters and latency
	// histograms into the registry (see obs.go); ObsNode labels them.
	Obs     *obs.Registry
	ObsNode string
}

// DefaultConfig returns a small but realistic configuration.
func DefaultConfig() Config {
	return Config{
		SegmentSize: 1 << 20, // 1 MiB segments
		NumSegments: 16,
		CacheBytes:  4 << 20,
		PMModel:     pmem.OptaneBypass(),
		SSDModel:    ssd.NVMe(),
	}
}

// TestConfig returns a latency-free configuration for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.PMModel = pmem.Zero()
	c.SSDModel = ssd.Zero()
	return c
}

// Batch is a persisted-but-uncommitted append batch, as returned by
// Uncommitted for recovery's order-request re-issuing (§6.3).
type Batch struct {
	Token   types.Token
	Color   types.ColorID
	Records [][]byte
}

// colorIndex is the per-color volatile view of the log, with its own lock:
// the write path's per-color sharding means operations on different colors
// touch disjoint colorIndexes.
type colorIndex struct {
	mu        sync.RWMutex
	bySN      map[types.SN]recordRef
	maxSN     types.SN
	trimmed   types.SN // records with sn <= trimmed are gone
	ckptFloor types.SN // trim watermark restored from a checkpoint (≤ trimmed)
}

// lookupLocked resolves sn to its record ref. Caller holds ci.mu.
func (ci *colorIndex) lookupLocked(sn types.SN) (recordRef, error) {
	if sn <= ci.trimmed {
		if sn <= ci.ckptFloor {
			return recordRef{}, errCheckpointTrimmed
		}
		return recordRef{}, ErrTrimmed
	}
	ref, ok := ci.bySN[sn]
	if !ok {
		return recordRef{}, ErrNotFound
	}
	return ref, nil
}

// boundsLocked returns the [head, tail] SN pair. Caller holds ci.mu.
func (ci *colorIndex) boundsLocked() (head, tail types.SN) {
	if len(ci.bySN) == 0 {
		return types.InvalidSN, types.InvalidSN
	}
	first := true
	for sn := range ci.bySN {
		if first || sn < head {
			head = sn
		}
		first = false
	}
	return head, ci.maxSN
}

// Store is one replica's storage server.
type Store struct {
	cfg Config

	pm    *pmem.Pool
	cold  tier.Tier // the tier below PM (SSD, LSM, …); never nil
	cache *stripedCache
	gc    *groupCommitter // nil unless cfg.GroupCommit

	// colors maps ColorID -> *colorIndex; entries are created on first use
	// and never removed (Recover clears them in place under their locks).
	colors sync.Map

	// alloc is the narrow segment-allocator lock: it guards the slot
	// table, the segment map, the active segment and its DRAM frontier,
	// the token index, and the flush/recover counters. Acquired after a
	// color lock, never before one.
	alloc    sync.RWMutex
	slots    []uint64   // pm offset of each slot
	slotSeg  []*segment // segment currently occupying each slot (nil = free)
	segs     map[uint64]*segment
	active   *segment
	nextSeg  uint64
	byToken  map[types.Token]*entryLoc
	flushes  uint64
	recovers uint64

	// Lifecycle state (see lifecycle.go and checkpoint.go). The counters
	// are guarded by alloc; ckptTrimmed holds the per-color trim floors of
	// the last durable checkpoint — the watermarks cold GC may rely on.
	lc           *lifecycle
	evictions    uint64
	evictedBytes uint64
	gcSegments   uint64
	gcBytes      uint64
	checkpoints  uint64
	ckptSeq      uint64
	ckptEntries  int    // entries covered by the last durable checkpoint
	uncovered    uint64 // entries flushed since the last durable checkpoint
	ckptTrimmed  map[types.ColorID]types.SN
	ckptCovered  map[uint64]bool // segment ids the last durable checkpoint covers
	lastRecovery RecoveryStats

	// ckptMu serializes checkpoint writes (the lifecycle tick vs
	// ForceCheckpoint); held across no other store lock acquisition except
	// the snapshot order documented in writeCheckpoint.
	ckptMu sync.Mutex

	// coldMisses counts PM-miss reads served by the cold tier; failpoint
	// arms a one-shot lifecycle crash (chaos hook). Both are touched on
	// lock-free paths.
	coldMisses atomic.Uint64
	failpoint  atomic.Uint32

	// Observability (nil-safe when cfg.Obs is unset; see obs.go).
	pmTxH       *obs.Histogram // PM transaction latency
	gcWindowH   *obs.Histogram // group-commit window latency
	evictionH   *obs.Histogram // background eviction latency
	checkpointH *obs.Histogram // checkpoint write latency
}

// New creates a Store with fresh devices per cfg.
//
// Deprecated: use Open. New delegates to Open with no options.
func New(cfg Config) (*Store, error) {
	return Open(cfg)
}

// NewWithDevices creates a Store over existing devices (used by tests and
// by recovery flows that re-attach to surviving media).
//
// Deprecated: use Open with WithPMTier and WithSSDTier.
func NewWithDevices(cfg Config, pool *pmem.Pool, dev *ssd.Device) (*Store, error) {
	return Open(cfg, WithPMTier(pool), WithSSDTier(dev))
}

// Close stops the background lifecycle and the group committer (if any),
// draining queued writes. The store remains readable; further writes fail
// with ErrCommitterClosed.
func (st *Store) Close() {
	if st.lc != nil {
		st.lc.stop()
	}
	if st.gc != nil {
		st.gc.close()
	}
}

// color returns (creating on first use) the color's index.
func (st *Store) color(c types.ColorID) *colorIndex {
	if v, ok := st.colors.Load(c); ok {
		return v.(*colorIndex)
	}
	v, _ := st.colors.LoadOrStore(c, &colorIndex{bySN: make(map[types.SN]recordRef)})
	return v.(*colorIndex)
}

// colorIfExists returns the color's index without creating one.
func (st *Store) colorIfExists(c types.ColorID) (*colorIndex, bool) {
	v, ok := st.colors.Load(c)
	if !ok {
		return nil, false
	}
	return v.(*colorIndex), true
}

// newActiveSegment claims a free slot (flushing the oldest committed
// segment if none is free) and installs a fresh segment in it.
// Caller holds st.alloc.
func (st *Store) newActiveSegment() error {
	slot := -1
	for i, s := range st.slotSeg {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		var err error
		slot, err = st.flushOldest()
		if err != nil {
			return err
		}
	}
	seg := newSegment(st.nextSeg, slot, st.slots[slot], segHeaderSize)
	st.nextSeg++
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], segHeaderSize)
	binary.LittleEndian.PutUint64(hdr[8:16], seg.id)
	if err := st.pm.Write(seg.pmOff, hdr[:]); err != nil {
		return err
	}
	st.slotSeg[slot] = seg
	st.segs[seg.id] = seg
	st.active = seg
	return nil
}

// flushOldest frees one PM slot: a fully-trimmed (dead) segment is simply
// reclaimed; otherwise the oldest fully-committed sealed segment is flushed
// to the SSD ("a contiguous portion from the start of the log is flushed to
// SSD and removed from PM", §5.2). Caller holds st.alloc.
func (st *Store) flushOldest() (int, error) {
	// Prefer reclaiming a dead segment — trimmed data needs no SSD write.
	// Segments claimed by the background evictor are skipped everywhere:
	// the evictor reads their PM bytes without the allocator lock, so
	// reusing their slot under it would hand the evictor torn data.
	var dead *segment
	for _, seg := range st.segs {
		if seg.flushed() || seg == st.active || seg.live.Load() > 0 || seg.evicting.Load() {
			continue
		}
		if !st.segmentFlushable(seg) {
			continue // has uncommitted entries
		}
		if dead == nil || seg.id < dead.id {
			dead = seg
		}
	}
	if dead != nil {
		slot := dead.slotIdx()
		st.dropSegmentLocked(dead)
		return slot, nil
	}
	var victim *segment
	for _, seg := range st.segs {
		if seg.flushed() || seg == st.active || seg.evicting.Load() {
			continue
		}
		if !st.segmentFlushable(seg) {
			continue
		}
		if victim == nil || seg.id < victim.id {
			victim = seg
		}
	}
	if victim == nil {
		return -1, ErrOutOfSpace
	}
	raw := make([]byte, victim.used)
	if err := st.pm.Read(victim.pmOff, raw); err != nil {
		return -1, err
	}
	if err := st.cold.Put(victim.ssdName(), raw); err != nil {
		return -1, err
	}
	if err := st.cold.Sync(); err != nil {
		return -1, err
	}
	slot := victim.slotIdx()
	victim.slot.Store(-1)
	st.slotSeg[slot] = nil
	st.flushes++
	st.uncovered += uint64(victim.total)
	return slot, nil
}

// segmentFlushable reports whether every live entry of the segment is
// committed (uncommitted entries must stay in PM because their sn field is
// still mutable — and, under group commit, possibly not yet durable).
// Caller holds st.alloc; the per-entry fields are atomics because commits
// of any color may be setting them concurrently under their color lock.
func (st *Store) segmentFlushable(seg *segment) bool {
	for _, tok := range seg.tokens {
		if loc := st.byToken[tok]; loc != nil && loc.seg == seg && !loc.dead.Load() && !loc.first().Valid() {
			return false
		}
	}
	return true
}

// dropSegmentLocked removes a fully-dead segment and all token index
// entries pointing into it. Caller holds st.alloc.
func (st *Store) dropSegmentLocked(seg *segment) {
	for _, tok := range seg.tokens {
		if loc := st.byToken[tok]; loc != nil && loc.seg == seg {
			delete(st.byToken, tok)
		}
	}
	if !seg.flushed() {
		st.slotSeg[seg.slotIdx()] = nil
	}
	delete(st.segs, seg.id)
}

// Put persists a single-record append (convenience wrapper over PutBatch).
func (st *Store) Put(color types.ColorID, token types.Token, data []byte) error {
	return st.PutBatch(color, token, [][]byte{data})
}

// PutBatch persists an uncommitted append batch (Alg. 1 line 17:
// "persist(records[], t)"). Duplicate tokens are rejected so append retries
// are idempotent.
//
// The allocator lock is held only across the duplicate check and the
// segment-space reservation; with group commit enabled the PM write itself
// is awaited after release, so concurrent appends (different colors on the
// write lane, plus the sync path) share one transaction window.
func (st *Store) PutBatch(color types.ColorID, token types.Token, records [][]byte) error {
	if len(records) == 0 {
		return fmt.Errorf("storage: empty batch for token %v", token)
	}
	payload := encodeBatch(records)
	spans, err := batchSpans(payload)
	if err != nil {
		return err
	}
	buf := encodeEntry(entryKindRecord, color, token, types.InvalidSN, payload)

	st.alloc.Lock()
	if _, ok := st.byToken[token]; ok {
		st.alloc.Unlock()
		return ErrDuplicateToken
	}
	if entrySize(len(payload)) > st.cfg.SegmentSize-segHeaderSize {
		st.alloc.Unlock()
		return fmt.Errorf("storage: batch of %d bytes exceeds segment capacity", len(payload))
	}
	seg, off, err := st.reserveEntry(uint64(len(buf)))
	if err != nil {
		st.alloc.Unlock()
		return err
	}
	loc := &entryLoc{
		seg:        seg,
		off:        off,
		payloadLen: len(payload),
		spans:      spans,
		token:      token,
		color:      color,
	}
	loc.liveCount.Store(int32(len(spans)))
	st.byToken[token] = loc
	seg.tokens = append(seg.tokens, token)
	seg.live.Add(1)
	wait, err := st.persistEntry(seg, off, buf)
	st.alloc.Unlock()
	if wait != nil {
		err = wait()
	}
	if err != nil {
		// The write never became durable (the pool is crashed or the
		// committer closed): withdraw the volatile index entry so a retry
		// after recovery is not mistaken for a duplicate.
		st.alloc.Lock()
		if cur := st.byToken[token]; cur == loc {
			delete(st.byToken, token)
		}
		seg.live.Add(-1)
		st.alloc.Unlock()
		return err
	}
	return nil
}

// Commit assigns the batch its SN range, making its records readable
// (Alg. 1 line 24: "commit_all(t, sn)"). Per the protocol, lastSN is the SN
// of the final record of the batch; a batch of n records occupies
// [lastSN-n+1, lastSN]. Re-committing with the same SN is a no-op.
//
// Commits of one color are serialized by the color lock (held across the
// durable SN write, so the write-lane FIFO and the sync path cannot
// interleave commits of the same token); commits of different colors run
// in parallel. The segment stays pinned in PM until firstSN is published,
// which makes the in-place SN write and the cache fill safe against slot
// reuse without holding the allocator lock.
func (st *Store) Commit(token types.Token, lastSN types.SN) error {
	if !lastSN.Valid() {
		return fmt.Errorf("storage: cannot commit %v with invalid SN", token)
	}
	st.alloc.RLock()
	loc := st.byToken[token]
	st.alloc.RUnlock()
	if loc == nil {
		return ErrUnknownToken
	}
	if int(lastSN.Counter()) < loc.count() {
		return fmt.Errorf("storage: SN %v too small for batch of %d", lastSN, loc.count())
	}
	firstSN := lastSN - types.SN(loc.count()-1)
	ci := st.color(loc.color)
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if cur := loc.first(); cur.Valid() {
		if cur == firstSN {
			return nil
		}
		return fmt.Errorf("storage: token %v already committed at %v, got %v", token, cur, firstSN)
	}
	if err := st.commitEntrySN(loc, firstSN); err != nil {
		return err
	}
	for i := 0; i < loc.count(); i++ {
		sn := firstSN + types.SN(i)
		if sn <= ci.trimmed {
			// Committed below the trim watermark: immediately dead
			// (a trim raced ahead of this commit).
			loc.kill()
			continue
		}
		if _, taken := ci.bySN[sn]; taken {
			// Write-Once-Read-Many (§4): an SN never changes its record.
			// A colliding assignment (which a correct ordering layer never
			// produces) loses; its slot becomes a dead entry.
			loc.kill()
			continue
		}
		ci.bySN[sn] = recordRef{loc: loc, idx: i}
		if sn > ci.maxSN {
			ci.maxSN = sn
		}
		// Freshly appended records also populate the cache (§5.2). The
		// entry is still uncommitted (firstSN unpublished), so its segment
		// cannot be flushed from under this PM read.
		sp := loc.spans[i]
		data := make([]byte, sp.len)
		if err := st.pm.Read(loc.seg.pmOff+loc.off+entryHeaderSize+uint64(sp.off), data); err == nil {
			st.cache.put(loc.color, sn, data)
		}
	}
	// Publish last: from here on segmentFlushable may evict the segment.
	loc.firstSN.Store(uint64(firstSN))
	return nil
}

// Has reports whether the token has been persisted (committed or not).
func (st *Store) Has(token types.Token) bool {
	st.alloc.RLock()
	defer st.alloc.RUnlock()
	_, ok := st.byToken[token]
	return ok
}

// TokenSN returns the last SN assigned to a persisted token (InvalidSN if
// uncommitted) and whether the token is known.
func (st *Store) TokenSN(token types.Token) (types.SN, bool) {
	_, sn, ok := st.TokenInfo(token)
	return sn, ok
}

// TokenInfo returns the color and last SN of a persisted token (InvalidSN
// if uncommitted) and whether the token is known.
func (st *Store) TokenInfo(token types.Token) (types.ColorID, types.SN, bool) {
	st.alloc.RLock()
	loc := st.byToken[token]
	st.alloc.RUnlock()
	if loc == nil {
		return 0, types.InvalidSN, false
	}
	if !loc.first().Valid() {
		return loc.color, types.InvalidSN, true
	}
	return loc.color, loc.lastSN(), true
}

// Get returns the payload of the committed record (color, sn), consulting
// cache, then PM, then SSD (§5.2: "the volatile cache is first read, then
// PM, then the SSD").
//
// The device access runs with no store lock held, so concurrent readers
// (the replica's read lane) overlap their PM/SSD latency instead of
// serializing. PM slots are reused when a segment is flushed to the SSD,
// so an unlocked PM read is revalidated afterwards: if the segment lost
// its slot mid-read the bytes may be torn and the lookup is retried (the
// record then resolves to its SSD copy, which is immutable).
func (st *Store) Get(color types.ColorID, sn types.SN) ([]byte, error) {
	if data, ok := st.cache.get(color, sn); ok {
		return data, nil
	}
	ci, ok := st.colorIfExists(color)
	if !ok {
		return nil, ErrNotFound
	}
	for attempt := 0; attempt < 2; attempt++ {
		ci.mu.RLock()
		ref, err := ci.lookupLocked(sn)
		ci.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		seg := ref.loc.seg
		flushed := seg.flushed()
		data, derr := st.readRecordAt(ref.loc, ref.idx, flushed)
		if flushed {
			// Cold blobs are written once and never mutated, so a success
			// is final. A failure is retried through the lookup: the blob
			// may have been garbage collected after a trim landed, in
			// which case the next lookup reports ErrTrimmed.
			if derr == nil {
				st.coldMisses.Add(1)
				st.cache.put(color, sn, data)
				return data, nil
			}
			continue
		}
		if derr == nil {
			st.alloc.RLock()
			valid := !seg.flushed() && st.slotSeg[seg.slotIdx()] == seg
			st.alloc.RUnlock()
			if valid {
				st.cache.put(color, sn, data)
				return data, nil
			}
		}
		// The PM slot was flushed or reclaimed mid-read: retry the lookup
		// (the record moved to the cold tier, or was trimmed away).
	}
	// Still racing after retries (or the device read keeps failing):
	// resolve with the allocator lock held across the read, where no flush
	// can interleave (lock order: color, then allocator).
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	ref, err := ci.lookupLocked(sn)
	if err != nil {
		return nil, err
	}
	st.alloc.RLock()
	data, err := st.readRecordData(ref.loc, ref.idx)
	flushed := ref.loc.seg.flushed()
	st.alloc.RUnlock()
	if err != nil {
		if flushed {
			return nil, fmt.Errorf("%w: segment %d: %v", ErrEvicted, ref.loc.seg.id, err)
		}
		return nil, err
	}
	if flushed {
		st.coldMisses.Add(1)
	}
	st.cache.put(color, sn, data)
	return data, nil
}

// MaxSN returns the largest committed SN seen for the color.
func (st *Store) MaxSN(color types.ColorID) types.SN {
	ci, ok := st.colorIfExists(color)
	if !ok {
		return types.InvalidSN
	}
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.maxSN
}

// Trimmed returns the color's trim frontier: the largest SN an applied
// trim has covered (records at or below it are gone). InvalidSN when the
// color was never trimmed. The sync-phase exchanges this so a recovering
// replica never resurrects garbage-collected records.
func (st *Store) Trimmed(color types.ColorID) types.SN {
	ci, ok := st.colorIfExists(color)
	if !ok {
		return types.InvalidSN
	}
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.trimmed
}

// Bounds returns the [head, tail] SN pair of the color's log: head is the
// smallest retained SN, tail the largest committed one.
func (st *Store) Bounds(color types.ColorID) (head, tail types.SN) {
	ci, ok := st.colorIfExists(color)
	if !ok {
		return types.InvalidSN, types.InvalidSN
	}
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.boundsLocked()
}

// Scan returns all committed records of the color sorted by SN (the
// replica-local half of the Subscribe protocol, §6.2).
func (st *Store) Scan(color types.ColorID) ([]types.Record, error) {
	return st.ScanFrom(color, types.InvalidSN)
}

// ScanFrom returns committed records of the color with SN > after, sorted.
// Only the matching refs are snapshotted and read — a subscriber tailing
// the log no longer pays device reads for the prefix it already has — and
// each device read runs with no store lock held (see Get).
func (st *Store) ScanFrom(color types.ColorID, after types.SN) ([]types.Record, error) {
	type snRef struct {
		sn  types.SN
		ref recordRef
	}
	ci, ok := st.colorIfExists(color)
	if !ok {
		return nil, nil
	}
	ci.mu.RLock()
	refs := make([]snRef, 0, len(ci.bySN))
	for sn, ref := range ci.bySN {
		if sn > after {
			refs = append(refs, snRef{sn, ref})
		}
	}
	ci.mu.RUnlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].sn < refs[j].sn })
	out := make([]types.Record, 0, len(refs))
	for _, r := range refs {
		data, err := st.readLive(r.ref.loc, r.ref.idx)
		if err != nil {
			return nil, err
		}
		out = append(out, types.Record{Token: r.ref.loc.token, SN: r.sn, Color: color, Data: data})
	}
	return out, nil
}

// readLive reads one record with no store lock held across the device
// access, revalidating PM reads against slot reuse (see Get for the
// hazard).
func (st *Store) readLive(loc *entryLoc, idx int) ([]byte, error) {
	for attempt := 0; attempt < 2; attempt++ {
		flushed := loc.seg.flushed()
		data, err := st.readRecordAt(loc, idx, flushed)
		if flushed {
			return data, err // SSD files are immutable: both outcomes final
		}
		if err == nil {
			st.alloc.RLock()
			valid := !loc.seg.flushed() && st.slotSeg[loc.seg.slotIdx()] == loc.seg
			st.alloc.RUnlock()
			if valid {
				return data, nil
			}
		}
	}
	st.alloc.RLock()
	defer st.alloc.RUnlock()
	return st.readRecordData(loc, idx)
}

// Uncommitted returns batches persisted but not yet assigned SNs, used by
// recovery to re-issue order requests (§6.3).
func (st *Store) Uncommitted() []Batch {
	st.alloc.RLock()
	locs := make([]*entryLoc, 0)
	for _, loc := range st.byToken {
		if !loc.dead.Load() && !loc.first().Valid() {
			locs = append(locs, loc)
		}
	}
	st.alloc.RUnlock()
	sort.Slice(locs, func(i, j int) bool { return locs[i].token < locs[j].token })
	out := make([]Batch, 0, len(locs))
	for _, loc := range locs {
		b := Batch{Token: loc.token, Color: loc.color}
		ok := true
		for i := 0; i < loc.count(); i++ {
			st.alloc.RLock()
			data, err := st.readRecordData(loc, i)
			st.alloc.RUnlock()
			if err != nil {
				ok = false
				break
			}
			b.Records = append(b.Records, data)
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// Trim deletes every record of the color with SN <= sn (§6.2). The trim is
// persisted as a log marker so it survives crashes. Returns the remaining
// [head, tail] bounds. Lock order: the color lock is taken first and held
// across the marker write and the index sweep, serializing the trim
// against commits of the same color; the allocator lock is only held for
// the marker's space reservation.
func (st *Store) Trim(color types.ColorID, sn types.SN) (head, tail types.SN, err error) {
	ci := st.color(color)
	ci.mu.Lock()
	defer ci.mu.Unlock()
	buf := encodeEntry(entryKindTrim, color, 0, sn, nil)
	st.alloc.Lock()
	seg, off, e := st.reserveEntry(uint64(len(buf)))
	if e != nil {
		st.alloc.Unlock()
		return 0, 0, e
	}
	seg.trimMarks = append(seg.trimMarks, trimMark{color: color, sn: sn})
	wait, e := st.persistEntry(seg, off, buf)
	st.alloc.Unlock()
	if wait != nil {
		e = wait()
	}
	if e != nil {
		return 0, 0, e
	}
	st.applyTrimLocked(ci, color, sn)
	head, tail = ci.boundsLocked()
	// Trims create garbage: nudge the lifecycle so cold blobs whose records
	// all died are reclaimed promptly.
	if st.lc != nil {
		st.lc.kick()
	}
	return head, tail, nil
}

// applyTrimLocked removes trimmed records from the indexes. Caller holds
// the color's lock.
func (st *Store) applyTrimLocked(ci *colorIndex, color types.ColorID, sn types.SN) {
	if sn > ci.trimmed {
		ci.trimmed = sn
	}
	for s, ref := range ci.bySN {
		if s <= sn {
			ref.loc.kill()
			delete(ci.bySN, s)
			st.cache.drop(color, s)
		}
	}
}

// lockAllColors acquires every existing color lock (in a deterministic
// order) and returns the locked set keyed by color. Crash/Recover use it
// for exclusivity against the per-color paths; the allocator lock must be
// acquired AFTER this (lock order: colors before allocator).
func (st *Store) lockAllColors() map[types.ColorID]*colorIndex {
	ids := make([]types.ColorID, 0)
	st.colors.Range(func(k, _ any) bool {
		ids = append(ids, k.(types.ColorID))
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	locked := make(map[types.ColorID]*colorIndex, len(ids))
	for _, c := range ids {
		ci := st.color(c)
		ci.mu.Lock()
		locked[c] = ci
	}
	return locked
}

func unlockColors(locked map[types.ColorID]*colorIndex) {
	for _, ci := range locked {
		ci.mu.Unlock()
	}
}

// Crash simulates a power failure of the whole storage node. In-flight
// group-commit windows fail (their callers see ErrCrashed and never ack);
// Recover rolls their partial writes back via the pmem undo log.
func (st *Store) Crash() {
	locked := st.lockAllColors()
	st.alloc.Lock()
	st.pm.Crash()
	st.cold.Crash()
	st.alloc.Unlock()
	unlockColors(locked)
}

// Recover re-opens the devices and rebuilds every volatile index by
// scanning the PM segment slots and the flushed SSD segments. This is the
// operation measured by the paper's Fig. 10: its cost is linear in the
// number of records to recover.
func (st *Store) Recover() error {
	locked := st.lockAllColors()
	defer func() { unlockColors(locked) }()
	st.alloc.Lock()
	defer st.alloc.Unlock()
	st.pm.Recover()
	if err := st.cold.Recover(); err != nil {
		return err
	}

	st.segs = make(map[uint64]*segment)
	st.byToken = make(map[types.Token]*entryLoc)
	st.cache = newStripedCache(st.cfg.CacheBytes)
	st.active = nil
	st.nextSeg = 1
	for i := range st.slotSeg {
		st.slotSeg[i] = nil
	}
	// Reset every color index in place (their locks are held); colors
	// first seen during ingest are created and locked on demand.
	colorLocked := func(c types.ColorID) *colorIndex {
		if ci, ok := locked[c]; ok {
			return ci
		}
		ci := st.color(c)
		ci.mu.Lock()
		locked[c] = ci
		return ci
	}
	for _, ci := range locked {
		ci.bySN = make(map[types.SN]recordRef)
		ci.maxSN = types.InvalidSN
		ci.trimmed = types.InvalidSN
		ci.ckptFloor = types.InvalidSN
	}

	type pendingTrim struct {
		color types.ColorID
		sn    types.SN
	}
	var trims []pendingTrim

	ingest := func(seg *segment, raw []byte) error {
		return scanSegment(raw, func(off uint64, e decodedEntry, data []byte) error {
			seg.total++
			switch e.kind {
			case entryKindRecord:
				spans, err := batchSpans(data)
				if err != nil {
					return err
				}
				seg.live.Add(1)
				loc := &entryLoc{
					seg: seg, off: off, payloadLen: e.dataLen, spans: spans,
					token: e.token, color: e.color,
				}
				loc.firstSN.Store(uint64(e.sn))
				loc.liveCount.Store(int32(len(spans)))
				st.byToken[e.token] = loc
				seg.tokens = append(seg.tokens, e.token)
				if e.sn.Valid() {
					ci := colorLocked(e.color)
					for i := range spans {
						sn := e.sn + types.SN(i)
						if _, taken := ci.bySN[sn]; taken {
							// Write-Once (§4): recovery replays segments in
							// ascending id (persist) order, so the earlier
							// record keeps the SN exactly as the live index
							// did; a later colliding entry is dead.
							loc.kill()
							continue
						}
						ci.bySN[sn] = recordRef{loc: loc, idx: i}
						if sn > ci.maxSN {
							ci.maxSN = sn
						}
					}
				}
				return nil
			case entryKindTrim:
				seg.trimMarks = append(seg.trimMarks, trimMark{color: e.color, sn: e.sn})
				trims = append(trims, pendingTrim{color: e.color, sn: e.sn})
			}
			return nil
		})
	}

	var stats RecoveryStats

	// Collect every segment image — PM slots first (header, then only the
	// used prefix: the sequential scan whose cost Fig. 10 measures). The PM
	// copy of a segment always wins over its cold blob: eviction only frees
	// the slot after the cold copy is synced, so a surviving resident copy
	// means the blob may be torn.
	type pendingSeg struct {
		seg *segment
		raw []byte   // image to scan; nil when restored from checkpoint
		ck  *ckptSeg // checkpoint metadata (raw == nil)
	}
	var images []pendingSeg
	for i, base := range st.slots {
		var hdr [segHeaderSize]byte
		if err := st.pm.Read(base, hdr[:]); err != nil {
			return err
		}
		used := binary.LittleEndian.Uint64(hdr[0:8])
		id := binary.LittleEndian.Uint64(hdr[8:16])
		if id == 0 || used < segHeaderSize || used > st.cfg.SegmentSize {
			continue // never-used slot
		}
		raw := make([]byte, used)
		if err := st.pm.Read(base, raw); err != nil {
			return err
		}
		images = append(images, pendingSeg{seg: newSegment(id, i, base, used), raw: raw})
	}
	pmIDs := make(map[uint64]bool, len(images))
	for _, im := range images {
		pmIDs[im.seg.id] = true
	}

	// Restore covered segments from the newest durable checkpoint: their
	// entry metadata is in the blob already — no segment read, no scan.
	// This is what keeps recovery flat as the log grows (§5.2 / Fig. 10):
	// only the suffix flushed after the checkpoint is replayed below.
	ck := st.loadCheckpoint()
	covered := make(map[uint64]bool)
	if ck != nil {
		stats.CheckpointSeq = ck.seq
		stats.CoveredSegments = len(ck.segs)
		for i := range ck.segs {
			s := &ck.segs[i]
			covered[s.id] = true
			if pmIDs[s.id] {
				continue
			}
			images = append(images, pendingSeg{seg: newSegment(s.id, -1, 0, s.used), ck: s})
		}
	}

	// Scan the cold blobs flushed after the checkpoint (the bounded replay
	// suffix). Blobs that are gone or torn are skipped, not fatal: a blob
	// is only load-bearing once its eviction synced, and then either it is
	// readable or the PM copy survived (handled above). Unreadable
	// leftovers are torn artifacts of an unsynced eviction or blobs the
	// cold GC deleted under checkpoint cover.
	for _, name := range st.cold.List() {
		var id uint64
		if _, err := fmt.Sscanf(name, "seg-%d", &id); err != nil {
			continue
		}
		if pmIDs[id] || covered[id] {
			continue
		}
		sz, err := st.cold.Size(name)
		if err != nil {
			stats.MissingBlobs++
			continue
		}
		raw := make([]byte, sz)
		if err := st.cold.Get(name, 0, raw); err != nil {
			stats.MissingBlobs++
			continue
		}
		if err := scanSegment(raw, func(uint64, decodedEntry, []byte) error { return nil }); err != nil {
			stats.MissingBlobs++
			continue
		}
		images = append(images, pendingSeg{seg: newSegment(id, -1, 0, uint64(sz)), raw: raw})
	}

	// Ingest in ascending segment-id (persist) order so the rebuilt indexes
	// match the pre-crash ones deterministically.
	sort.Slice(images, func(i, j int) bool { return images[i].seg.id < images[j].seg.id })
	var flushedUncovered uint64
	for _, im := range images {
		if im.ck != nil {
			st.restoreCkptSeg(im.seg, im.ck, colorLocked)
			stats.RestoredEntries += len(im.ck.entries)
		} else {
			if err := ingest(im.seg, im.raw); err != nil {
				return err
			}
			stats.ScannedSegments++
			stats.ReplayedEntries += im.seg.total
			stats.ReplayedBytes += uint64(len(im.raw))
			if im.seg.flushed() {
				flushedUncovered += uint64(im.seg.total)
			}
		}
		st.segs[im.seg.id] = im.seg
		if !im.seg.flushed() {
			st.slotSeg[im.seg.slotIdx()] = im.seg
		}
		if im.seg.id >= st.nextSeg {
			st.nextSeg = im.seg.id + 1
		}
	}

	// Trims: the checkpoint's color floors first (they subsume every trim
	// the checkpoint observed applied), then the covered segments'
	// preserved markers, then the markers replayed from scanned images.
	if ck != nil {
		for c, cc := range ck.colors {
			ci := colorLocked(c)
			ci.ckptFloor = cc.trimmed
			st.applyTrimLocked(ci, c, cc.trimmed)
			if cc.maxSN > ci.maxSN {
				ci.maxSN = cc.maxSN
			}
		}
		for _, s := range ck.segs {
			for _, m := range s.marks {
				st.applyTrimLocked(colorLocked(m.color), m.color, m.sn)
			}
		}
	}
	for _, tr := range trims {
		st.applyTrimLocked(colorLocked(tr.color), tr.color, tr.sn)
	}

	// Lifecycle bookkeeping: the restored checkpoint becomes the durable
	// one; everything scanned off the cold tier is uncovered again.
	st.ckptCovered = covered
	st.ckptTrimmed = make(map[types.ColorID]types.SN)
	st.ckptSeq = 0
	st.ckptEntries = 0
	if ck != nil {
		st.ckptSeq = ck.seq
		st.ckptEntries = stats.RestoredEntries
		for c, cc := range ck.colors {
			st.ckptTrimmed[c] = cc.trimmed
		}
	}
	st.uncovered = flushedUncovered

	// Pick or create the active segment.
	for _, seg := range st.segs {
		if seg.flushed() || seg.used+entryHeaderSize >= st.cfg.SegmentSize {
			continue
		}
		if st.active == nil || seg.id > st.active.id {
			st.active = seg
		}
	}
	if st.active == nil {
		if err := st.newActiveSegment(); err != nil {
			return err
		}
	}
	st.recovers++
	st.lastRecovery = stats
	return nil
}

// restoreCkptSeg registers a checkpoint-covered segment from metadata alone
// (no device read). Caller holds st.alloc and the color locks regime of
// Recover; colorLocked resolves (locking on demand) a color's index.
func (st *Store) restoreCkptSeg(seg *segment, s *ckptSeg, colorLocked func(types.ColorID) *colorIndex) {
	seg.sealed = true
	seg.trimMarks = append([]trimMark(nil), s.marks...)
	for _, e := range s.entries {
		loc := &entryLoc{
			seg: seg, off: e.off, payloadLen: e.payloadLen, spans: e.spans,
			token: e.token, color: e.color,
		}
		loc.firstSN.Store(uint64(e.firstSN))
		loc.liveCount.Store(int32(len(e.spans)))
		seg.live.Add(1)
		seg.total++
		st.byToken[e.token] = loc
		seg.tokens = append(seg.tokens, e.token)
		if !e.firstSN.Valid() {
			continue
		}
		ci := colorLocked(e.color)
		for i := range e.spans {
			sn := e.firstSN + types.SN(i)
			if _, taken := ci.bySN[sn]; taken {
				// Write-Once (§4): ids are processed in persist order, so
				// the earlier record keeps the SN (see ingest).
				loc.kill()
				continue
			}
			ci.bySN[sn] = recordRef{loc: loc, idx: i}
			if sn > ci.maxSN {
				ci.maxSN = sn
			}
		}
	}
}

// Stats reports storage-stack counters.
type Stats struct {
	Records     int
	Committed   int
	Flushes     uint64
	Recoveries  uint64
	CacheHits   uint64
	CacheMisses uint64

	// Lifecycle counters (see lifecycle.go / checkpoint.go).
	Evictions        uint64 // background evictions to the cold tier
	EvictedBytes     uint64
	GCSegments       uint64 // segments reclaimed (both tiers)
	GCBytes          uint64
	Checkpoints      uint64 // checkpoints written since open
	CheckpointSeq    uint64 // sequence of the last durable checkpoint
	ColdMissReads    uint64 // PM-miss reads served by the cold tier
	ResidentSegments int    // segments currently occupying PM slots
	ResidentBytes    uint64 // PM bytes those segments occupy
	ColdSegments     int    // flushed segments (cold-tier only)

	GC   GCStats
	PM   pmem.Stats
	SSD  ssd.Stats // zero unless the cold tier is device-backed
	Cold tier.Stats
}

// Stats returns a snapshot of counters across the tiers.
func (st *Store) Stats() Stats {
	// Color locks strictly before the allocator lock.
	committed := 0
	st.colors.Range(func(_, v any) bool {
		ci := v.(*colorIndex)
		ci.mu.RLock()
		committed += len(ci.bySN)
		ci.mu.RUnlock()
		return true
	})
	st.alloc.RLock()
	defer st.alloc.RUnlock()
	hits, misses := st.cache.stats()
	s := Stats{
		Records:       len(st.byToken),
		Committed:     committed,
		Flushes:       st.flushes,
		Recoveries:    st.recovers,
		CacheHits:     hits,
		CacheMisses:   misses,
		Evictions:     st.evictions,
		EvictedBytes:  st.evictedBytes,
		GCSegments:    st.gcSegments,
		GCBytes:       st.gcBytes,
		Checkpoints:   st.checkpoints,
		CheckpointSeq: st.ckptSeq,
		ColdMissReads: st.coldMisses.Load(),
		PM:            st.pm.Stats(),
		Cold:          st.cold.Stats(),
	}
	for _, seg := range st.segs {
		if seg.flushed() {
			s.ColdSegments++
		} else {
			s.ResidentSegments++
			s.ResidentBytes += seg.used
		}
	}
	if dev := st.ssdDevice(); dev != nil {
		s.SSD = dev.Stats()
	}
	if st.gc != nil {
		s.GC = st.gc.stats()
	}
	return s
}

// Attach re-opens a store over devices holding a previous incarnation's
// data (e.g. snapshots restored by cmd/flexlog-server): the PM slots are
// located at their canonical offsets (the same layout Open creates) and
// every volatile index is rebuilt by Recover's scan.
//
// Deprecated: use Open with WithPMTier, WithSSDTier and WithAttach.
func Attach(cfg Config, pool *pmem.Pool, dev *ssd.Device) (*Store, error) {
	return Open(cfg, WithPMTier(pool), WithSSDTier(dev), WithAttach())
}

// ssdDevice returns the raw device backing the cold tier, if it has one
// (the SSD and LSM backends do).
func (st *Store) ssdDevice() *ssd.Device {
	if d, ok := st.cold.(interface{ Device() *ssd.Device }); ok {
		return d.Device()
	}
	return nil
}

// SaveDevices snapshots both device tiers to files (see pmem.SaveTo and
// ssd.SaveTo); Attach restores a store from them on the next boot. It
// fails when the cold tier is not backed by a raw device.
func (st *Store) SaveDevices(pmPath, ssdPath string) error {
	dev := st.ssdDevice()
	if dev == nil {
		return fmt.Errorf("storage: cold tier %q has no snapshot-able device", st.cold.Kind())
	}
	if err := st.pm.SaveTo(pmPath); err != nil {
		return err
	}
	return dev.SaveTo(ssdPath)
}
