package storage

import (
	"errors"
	"fmt"
	"time"
)

// The storage lifecycle (§5.2's background tiering, made explicit): a
// single goroutine that, on every tick (or kick from a trim),
//
//  1. reclaims fully-trimmed resident segments (PM garbage collection —
//     no cold write needed),
//  2. evicts the oldest fully-committed segments to the cold tier while
//     the PM resident set exceeds Config.PMBudget,
//  3. writes a checkpoint once Config.CheckpointEvery entries have been
//     flushed since the last one (see checkpoint.go), and
//  4. deletes cold blobs of segments that are fully dead AND covered by
//     the last durable checkpoint (their trim markers survive inside it —
//     the rule that makes cold GC crash-safe).
//
// Eviction claim protocol: a candidate is claimed under the allocator lock
// by setting segment.evicting, then its PM bytes are read and written to
// the cold tier with no lock held (claimed segments are never appended to,
// never committed into — they are fully committed — and the allocator
// refuses to reuse their slot, see flushOldest). Only after the cold copy
// is synced does the finalize step, back under the allocator lock, mark the
// segment flushed and free its slot. A crash between Put and Sync leaves a
// possibly-torn cold blob AND the intact PM copy; recovery takes the PM
// copy ("PM wins") and the torn blob is overwritten by the next eviction.

// CrashPoint selects where InjectCrash fires inside the lifecycle — the
// chaos engine's hooks for the two windows where tier state is split
// across devices.
type CrashPoint uint32

const (
	// CrashMidEviction crashes after the cold-tier Put of an evicted
	// segment but before its Sync (the torn-blob window).
	CrashMidEviction CrashPoint = 1
	// CrashMidCheckpoint crashes after the checkpoint blob's Put but
	// before its Sync (recovery must fall back to the previous one).
	CrashMidCheckpoint CrashPoint = 2
)

// ErrInjectedCrash is returned by lifecycle operations interrupted by an
// armed InjectCrash failpoint; the store is crashed when it is returned.
var ErrInjectedCrash = errors.New("storage: injected lifecycle crash")

// InjectCrash arms a one-shot failpoint: the next lifecycle operation that
// reaches the given point crashes the whole store (as Crash does) instead
// of completing. Used by the chaos engine and the crash-safety tests.
func (st *Store) InjectCrash(p CrashPoint) { st.failpoint.Store(uint32(p)) }

// lifecycle runs the background pass; created by Open when PMBudget or
// CheckpointEvery is set.
type lifecycle struct {
	st       *Store
	interval time.Duration
	kickCh   chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
}

func newLifecycle(st *Store, interval time.Duration) *lifecycle {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	lc := &lifecycle{
		st:       st,
		interval: interval,
		kickCh:   make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	go lc.run()
	return lc
}

// kick requests an immediate pass (non-blocking; coalesces).
func (lc *lifecycle) kick() {
	select {
	case lc.kickCh <- struct{}{}:
	default:
	}
}

func (lc *lifecycle) stop() {
	select {
	case <-lc.stopCh:
		return // already stopped
	default:
	}
	close(lc.stopCh)
	<-lc.doneCh
}

func (lc *lifecycle) run() {
	defer close(lc.doneCh)
	tick := time.NewTicker(lc.interval)
	defer tick.Stop()
	for {
		select {
		case <-lc.stopCh:
			return
		case <-tick.C:
		case <-lc.kickCh:
		}
		lc.st.lifecyclePass()
	}
}

// lifecyclePass runs one full background pass. Errors are swallowed: every
// step is retried on the next tick, and a crashed store simply fails each
// device access until Recover.
func (st *Store) lifecyclePass() {
	st.reclaimDeadResident()
	if st.cfg.PMBudget > 0 {
		for st.residentBytes() > st.cfg.PMBudget {
			if err := st.evictOldest(); err != nil {
				break
			}
		}
	}
	if st.cfg.CheckpointEvery > 0 {
		_ = st.writeCheckpoint(false)
	}
	st.gcCold()
}

// residentBytes returns the PM bytes occupied by resident segments.
func (st *Store) residentBytes() uint64 {
	st.alloc.RLock()
	defer st.alloc.RUnlock()
	var total uint64
	for _, seg := range st.segs {
		if !seg.flushed() {
			total += seg.used
		}
	}
	return total
}

// reclaimDeadResident drops fully-trimmed resident segments (PM GC): their
// slots become free without any cold-tier write. The trim markers they may
// contain are intentionally preserved only via the live color watermarks —
// the same semantics the on-demand reclaim in flushOldest has always had.
func (st *Store) reclaimDeadResident() {
	st.alloc.Lock()
	defer st.alloc.Unlock()
	for _, seg := range st.segs {
		if seg.flushed() || seg == st.active || seg.evicting.Load() || seg.live.Load() > 0 {
			continue
		}
		if !st.segmentFlushable(seg) {
			continue
		}
		st.gcSegments++
		st.gcBytes += seg.used
		st.dropSegmentLocked(seg)
	}
}

// evictOldest claims and evicts the oldest evictable resident segment.
// Returns an error when no candidate exists (PM is all active/uncommitted
// or already claimed) or the cold tier fails.
func (st *Store) evictOldest() error {
	st.alloc.Lock()
	var victim *segment
	for _, seg := range st.segs {
		if seg.flushed() || seg == st.active || seg.evicting.Load() {
			continue
		}
		if !st.segmentFlushable(seg) {
			continue
		}
		if victim == nil || seg.id < victim.id {
			victim = seg
		}
	}
	if victim == nil {
		st.alloc.Unlock()
		return fmt.Errorf("storage: no evictable segment")
	}
	victim.evicting.Store(true)
	used := victim.used
	st.alloc.Unlock()
	return st.evictSegment(victim, used)
}

// ForceEvict synchronously evicts the oldest evictable segment regardless
// of the PM budget (test and chaos hook).
func (st *Store) ForceEvict() error { return st.evictOldest() }

// ForceCheckpoint synchronously writes a checkpoint regardless of the
// uncovered-entry trigger (test and chaos hook).
func (st *Store) ForceCheckpoint() error { return st.writeCheckpoint(true) }

// evictSegment copies a claimed segment to the cold tier and, once the
// copy is durable, frees its PM slot. The claim is always released.
func (st *Store) evictSegment(seg *segment, used uint64) error {
	start := time.Now()
	release := func() {
		st.alloc.Lock()
		seg.evicting.Store(false)
		st.alloc.Unlock()
	}
	raw := make([]byte, used)
	if err := st.pm.Read(seg.pmOff, raw); err != nil {
		release()
		return err
	}
	if err := st.cold.Put(seg.ssdName(), raw); err != nil {
		release()
		return err
	}
	if st.failpoint.CompareAndSwap(uint32(CrashMidEviction), 0) {
		// The cold copy is written but not synced; the PM copy is intact.
		// Crash the whole store inside the window.
		seg.evicting.Store(false)
		st.Crash()
		return ErrInjectedCrash
	}
	if err := st.cold.Sync(); err != nil {
		release()
		return err
	}
	st.alloc.Lock()
	// Finalize only if the segment still owns its slot (a concurrent
	// Recover rebuilt the world while we were copying).
	if !seg.flushed() && seg.slotIdx() < len(st.slotSeg) && st.slotSeg[seg.slotIdx()] == seg {
		st.slotSeg[seg.slotIdx()] = nil
		seg.slot.Store(-1)
		st.flushes++
		st.evictions++
		st.evictedBytes += used
		st.uncovered += uint64(seg.total)
	}
	seg.evicting.Store(false)
	st.alloc.Unlock()
	st.evictionH.Since(start)
	return nil
}

// gcCold deletes the cold blobs of fully-dead segments covered by the last
// durable checkpoint. Coverage is what makes the deletion crash-safe: the
// segment's trim markers live inside the checkpoint, so losing the blob
// loses no trim. Uncovered dead blobs wait for the next checkpoint.
func (st *Store) gcCold() {
	st.alloc.Lock()
	var victims []*segment
	for _, seg := range st.segs {
		if !seg.flushed() || seg.live.Load() > 0 || !st.ckptCovered[seg.id] {
			continue
		}
		victims = append(victims, seg)
	}
	for _, seg := range victims {
		st.gcSegments++
		st.gcBytes += seg.used
		st.dropSegmentLocked(seg)
	}
	st.alloc.Unlock()
	// Blob deletion outside the lock: the segments are no longer reachable
	// from any index, and Delete is idempotent if we crash between drop
	// and delete (recovery restores the covered segment as fully dead and
	// the next pass re-collects it).
	for _, seg := range victims {
		if err := st.cold.Delete(seg.ssdName()); err != nil {
			return
		}
	}
	if len(victims) > 0 {
		_ = st.cold.Sync()
	}
}
