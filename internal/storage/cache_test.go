package storage

import (
	"bytes"
	"fmt"
	"testing"

	"flexlog/internal/types"
)

func TestLRUBasicPutGet(t *testing.T) {
	c := newLRUCache(1024)
	c.put(1, 1, []byte("a"))
	got, ok := c.get(1, 1)
	if !ok || string(got) != "a" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if _, ok := c.get(1, 2); ok {
		t.Fatal("missing key reported present")
	}
	if _, ok := c.get(2, 1); ok {
		t.Fatal("color must be part of the key")
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRUCache(30)
	for i := 1; i <= 4; i++ { // 4 * 10 bytes > 30
		c.put(1, types.SN(i), bytes.Repeat([]byte{byte(i)}, 10))
	}
	if _, ok := c.get(1, 1); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := c.get(1, 4); !ok {
		t.Fatal("newest entry missing")
	}
	if c.size > 30 {
		t.Fatalf("size %d exceeds capacity", c.size)
	}
}

func TestLRUAccessRefreshes(t *testing.T) {
	c := newLRUCache(30)
	c.put(1, 1, bytes.Repeat([]byte{1}, 10))
	c.put(1, 2, bytes.Repeat([]byte{2}, 10))
	c.put(1, 3, bytes.Repeat([]byte{3}, 10))
	c.get(1, 1) // refresh 1 so 2 becomes the eviction victim
	c.put(1, 4, bytes.Repeat([]byte{4}, 10))
	if _, ok := c.get(1, 1); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := c.get(1, 2); ok {
		t.Fatal("LRU victim not evicted")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(100)
	c.put(1, 1, []byte("aa"))
	c.put(1, 1, []byte("bbbb"))
	got, _ := c.get(1, 1)
	if string(got) != "bbbb" {
		t.Fatalf("updated value = %q", got)
	}
	if c.size != 4 {
		t.Fatalf("size after update = %d", c.size)
	}
}

func TestLRUDrop(t *testing.T) {
	c := newLRUCache(100)
	c.put(1, 1, []byte("x"))
	c.drop(1, 1)
	if _, ok := c.get(1, 1); ok {
		t.Fatal("dropped entry still present")
	}
	c.drop(1, 99) // dropping a missing entry is a no-op
	if c.len() != 0 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := newLRUCache(0)
	c.put(1, 1, []byte("x"))
	if _, ok := c.get(1, 1); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	h, m := c.stats()
	if h != 0 || m != 0 {
		t.Fatal("zero-capacity cache should not count")
	}
}

func TestLRUTooLargeEntrySkipped(t *testing.T) {
	c := newLRUCache(4)
	c.put(1, 1, []byte("12345"))
	if c.len() != 0 {
		t.Fatal("oversized entry stored")
	}
}

func TestLRUHitMissStats(t *testing.T) {
	c := newLRUCache(100)
	c.put(1, 1, []byte("x"))
	c.get(1, 1)
	c.get(1, 2)
	h, m := c.stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits, %d misses", h, m)
	}
}

func TestLRUSingleEntryChurn(t *testing.T) {
	c := newLRUCache(10)
	for i := 0; i < 100; i++ {
		c.put(1, types.SN(i+1), bytes.Repeat([]byte{byte(i)}, 10))
		if _, ok := c.get(1, types.SN(i+1)); !ok {
			t.Fatalf("entry %d missing right after insert", i)
		}
		if c.len() != 1 {
			t.Fatalf("len = %d at step %d", c.len(), i)
		}
	}
}

func TestLRUManyColors(t *testing.T) {
	c := newLRUCache(1 << 20)
	for color := 1; color <= 10; color++ {
		for i := 1; i <= 10; i++ {
			c.put(types.ColorID(color), types.SN(i), []byte(fmt.Sprintf("%d/%d", color, i)))
		}
	}
	for color := 1; color <= 10; color++ {
		for i := 1; i <= 10; i++ {
			got, ok := c.get(types.ColorID(color), types.SN(i))
			if !ok || string(got) != fmt.Sprintf("%d/%d", color, i) {
				t.Fatalf("get(%d,%d) = %q, %v", color, i, got, ok)
			}
		}
	}
}
