package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
	"time"

	"flexlog/internal/types"
)

// PM log layout (§5.2 "the stateful log in PM").
//
// The PM region is divided into fixed-size segments. Each segment starts
// with an 8-byte used-bytes watermark followed by a stream of entries:
//
//	[u32 kind][u32 color][u64 token][u64 sn][u32 dataLen][u32 crc][data…]
//
// The watermark is the validity frontier: recovery scans entries up to it.
// Appends write the entry then advance the watermark inside one pmem
// transaction, so a crash never exposes a torn entry. The sn field is
// rewritten in place when the ordering layer commits the record.
//
// When PM fills up, the oldest fully-committed segment is flushed verbatim
// to the SSD tier and its PM slot is reused ("a contiguous portion from the
// start of the log is flushed to SSD and removed from PM").

const (
	// segHeaderSize covers the 8-byte used-bytes watermark and the 8-byte
	// segment id.
	segHeaderSize   = 16
	entryHeaderSize = 32

	entryKindRecord = 1
	entryKindTrim   = 2
)

// segment is the DRAM descriptor of one PM segment slot.
//
// Ownership: id and pmOff are immutable; used, total, sealed and tokens are
// guarded by the store's allocator lock. slot and live are atomics because
// the lock-free read path (Get/readLive) consults slot to pick the device
// tier, and commits/trims of different colors adjust live concurrently
// while holding only their color lock.
type segment struct {
	id     uint64        // monotonically increasing; names the SSD file when flushed
	slot   atomic.Int64  // index of the PM slot currently holding it (-1 if flushed)
	pmOff  uint64        // base offset of the slot in the pmem pool
	used   uint64        // bytes used including header (mirrors the PM watermark)
	live   atomic.Int64  // entries not yet trimmed
	total  int           // entries appended
	sealed bool          // no more appends (slot full)
	tokens []types.Token // tokens of entries in this segment (for reclamation)

	// evicting is the background evictor's claim: while set, the allocator
	// must not reuse the slot (the evictor reads the PM bytes unlocked).
	evicting atomic.Bool
	// trimMarks lists the trim markers persisted inside this segment
	// (guarded by st.alloc). Cold GC may only delete a flushed segment's
	// blob once a durable checkpoint's trim floor covers every marker —
	// otherwise a crash would lose the marker along with the blob.
	trimMarks []trimMark
}

// trimMark is one persisted trim entry: records of color with SN <= sn are
// garbage.
type trimMark struct {
	color types.ColorID
	sn    types.SN
}

// newSegment builds a descriptor; slot is -1 for flushed (SSD-only) segments.
func newSegment(id uint64, slot int, pmOff, used uint64) *segment {
	s := &segment{id: id, pmOff: pmOff, used: used}
	s.slot.Store(int64(slot))
	return s
}

func (s *segment) flushed() bool { return s.slot.Load() < 0 }

// slotIdx returns the PM slot index; only meaningful when !flushed().
func (s *segment) slotIdx() int { return int(s.slot.Load()) }

func (s *segment) ssdName() string { return fmt.Sprintf("seg-%d", s.id) }

// recSpan locates one record inside an entry's framed payload.
type recSpan struct {
	off uint32 // offset within the payload (past the entry header)
	len uint32
}

// entryLoc records where an entry (one append batch) lives.
//
// seg, off, payloadLen, spans, token and color are immutable after
// construction. The remaining fields are atomics: they are mutated under
// the entry's color lock (Commit and Trim of one color are serialized),
// but read lock-free by the allocator paths (segmentFlushable, TokenInfo,
// Uncommitted) which hold only the allocator lock.
type entryLoc struct {
	seg        *segment
	off        uint64 // offset of the entry header within the segment
	payloadLen int    // framed payload length
	spans      []recSpan
	token      types.Token
	color      types.ColorID
	firstSN    atomic.Uint64 // InvalidSN (0) until committed; records occupy [firstSN, firstSN+count)
	liveCount  atomic.Int32  // records not yet trimmed (== len(spans) initially)
	dead       atomic.Bool   // every record trimmed
}

func (l *entryLoc) count() int { return len(l.spans) }

// first returns the committed first SN (InvalidSN while uncommitted).
func (l *entryLoc) first() types.SN { return types.SN(l.firstSN.Load()) }

// lastSN returns the SN of the final record of the batch.
func (l *entryLoc) lastSN() types.SN {
	return l.first() + types.SN(l.count()-1)
}

// kill marks one record of the entry dead; when the last record dies the
// whole entry is retired and the segment's live count drops. Safe under
// any lock regime: the dead transition is a CAS.
func (l *entryLoc) kill() {
	if l.liveCount.Add(-1) == 0 && l.dead.CompareAndSwap(false, true) {
		l.seg.live.Add(-1)
	}
}

// recordRef points at one record of a batch entry.
type recordRef struct {
	loc *entryLoc
	idx int
}

// encodeBatch frames a batch of records as [u32 count][u32 len_i][data_i]….
func encodeBatch(records [][]byte) []byte {
	total := 4
	for _, r := range records {
		total += 4 + len(r)
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(records)))
	off := 4
	for _, r := range records {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(r)))
		off += 4
		copy(buf[off:], r)
		off += len(r)
	}
	return buf
}

// batchSpans decodes the framing of a batch payload into record spans.
func batchSpans(payload []byte) ([]recSpan, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("storage: batch payload too short")
	}
	count := binary.LittleEndian.Uint32(payload[0:4])
	// Never trust the count for allocation: every record needs at least a
	// 4-byte length prefix, so more than len(payload)/4 records cannot fit.
	if uint64(count) > uint64(len(payload))/4 {
		return nil, fmt.Errorf("storage: batch count %d impossible for %d-byte payload", count, len(payload))
	}
	spans := make([]recSpan, 0, count)
	off := uint32(4)
	for i := uint32(0); i < count; i++ {
		if int(off)+4 > len(payload) {
			return nil, fmt.Errorf("storage: truncated batch record %d", i)
		}
		l := binary.LittleEndian.Uint32(payload[off : off+4])
		off += 4
		if int(off)+int(l) > len(payload) {
			return nil, fmt.Errorf("storage: truncated batch record %d payload", i)
		}
		spans = append(spans, recSpan{off: off, len: l})
		off += l
	}
	return spans, nil
}

func entrySize(dataLen int) uint64 {
	return uint64(entryHeaderSize + dataLen)
}

// encodeEntryHeader fills a 32-byte header.
func encodeEntryHeader(buf []byte, kind uint32, color types.ColorID, token types.Token, sn types.SN, data []byte) {
	binary.LittleEndian.PutUint32(buf[0:4], kind)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(color))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(token))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(sn))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[28:32], crc32.ChecksumIEEE(data))
}

type decodedEntry struct {
	kind    uint32
	color   types.ColorID
	token   types.Token
	sn      types.SN
	dataLen int
	crc     uint32
}

func decodeEntryHeader(buf []byte) decodedEntry {
	return decodedEntry{
		kind:    binary.LittleEndian.Uint32(buf[0:4]),
		color:   types.ColorID(binary.LittleEndian.Uint32(buf[4:8])),
		token:   types.Token(binary.LittleEndian.Uint64(buf[8:16])),
		sn:      types.SN(binary.LittleEndian.Uint64(buf[16:24])),
		dataLen: int(binary.LittleEndian.Uint32(buf[24:28])),
		crc:     binary.LittleEndian.Uint32(buf[28:32]),
	}
}

// encodeEntry frames one entry (header + payload) ready for the PM write.
func encodeEntry(kind uint32, color types.ColorID, token types.Token, sn types.SN, data []byte) []byte {
	buf := make([]byte, entryHeaderSize+len(data))
	encodeEntryHeader(buf, kind, color, token, sn, data)
	copy(buf[entryHeaderSize:], data)
	return buf
}

// reserveEntry claims space for one entry in the active segment, sealing it
// and rolling to a fresh one when full. It only advances the DRAM frontier;
// the PM bytes (entry + watermark) are written afterwards, either directly
// or through the group committer. Caller holds st.alloc.
func (st *Store) reserveEntry(need uint64) (*segment, uint64, error) {
	if st.active.used+need > st.cfg.SegmentSize {
		st.active.sealed = true
		if err := st.newActiveSegment(); err != nil {
			return nil, 0, err
		}
	}
	seg := st.active
	off := seg.used
	seg.used += need
	seg.total++
	return seg, off, nil
}

// writeEntryDirect persists a reserved entry and advances the segment's PM
// watermark inside one pmem transaction — the serial path used when group
// commit is disabled. Caller holds st.alloc, so entries of one segment
// become durable in reservation order (the watermark never covers torn
// bytes).
func (st *Store) writeEntryDirect(seg *segment, off uint64, buf []byte) error {
	txStart := time.Now()
	defer st.pmTxH.Since(txStart)
	tx, err := st.pm.Begin()
	if err != nil {
		return err
	}
	if err := tx.Put(seg.pmOff+off, buf); err != nil {
		tx.Abort()
		return err
	}
	var wm [8]byte
	binary.LittleEndian.PutUint64(wm[:], off+uint64(len(buf)))
	if err := tx.Put(seg.pmOff, wm[:]); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// persistEntry makes a reserved entry durable via the group committer when
// enabled, else directly. Called with st.alloc held; when group commit is
// on it returns a wait function the caller invokes after releasing the
// lock (enqueue order under the lock = reservation order, so the committer
// sees each segment's entries in frontier order).
func (st *Store) persistEntry(seg *segment, off uint64, buf []byte) (wait func() error, err error) {
	if st.gc != nil {
		return st.gc.submit(seg.pmOff+off, buf, true, seg.pmOff, off+uint64(len(buf))), nil
	}
	return nil, st.writeEntryDirect(seg, off, buf)
}

// commitEntrySN rewrites the sn field of an entry in place (transactional,
// or folded into the current group-commit window). Caller holds the
// entry's color lock and the entry is still uncommitted, so its segment is
// pinned in PM (segmentFlushable refuses segments with uncommitted
// entries) and the in-place write cannot race a slot reuse.
func (st *Store) commitEntrySN(loc *entryLoc, sn types.SN) error {
	if loc.seg.flushed() {
		// A record can only be flushed once committed; uncommitted entries
		// always stay in PM.
		return fmt.Errorf("storage: commit of flushed entry %v", loc.token)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(sn))
	off := loc.seg.pmOff + loc.off + 16
	if st.gc != nil {
		return st.gc.submit(off, buf[:], false, 0, 0)()
	}
	tx, err := st.pm.Begin()
	if err != nil {
		return err
	}
	if err := tx.Put(off, buf[:]); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// readRecordData fetches one record of an entry from PM or the SSD tier.
// Caller holds st.mu (the tier is decided by the segment's current state).
func (st *Store) readRecordData(loc *entryLoc, idx int) ([]byte, error) {
	return st.readRecordAt(loc, idx, loc.seg.flushed())
}

// readRecordAt is readRecordData with the tier fixed by the caller's
// snapshot, so it can run without st.mu (the unlocked read path; PM reads
// must then be revalidated against slot reuse).
func (st *Store) readRecordAt(loc *entryLoc, idx int, flushed bool) ([]byte, error) {
	if idx < 0 || idx >= loc.count() {
		return nil, fmt.Errorf("storage: record index %d out of batch of %d", idx, loc.count())
	}
	sp := loc.spans[idx]
	buf := make([]byte, sp.len)
	dataOff := loc.off + entryHeaderSize + uint64(sp.off)
	if flushed {
		if err := st.cold.Get(loc.seg.ssdName(), int64(dataOff), buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if err := st.pm.Read(loc.seg.pmOff+dataOff, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// scanSegment walks the entries of a segment image (either a PM slot or a
// flushed SSD file) calling fn for each decoded entry. raw must start at the
// segment header.
func scanSegment(raw []byte, fn func(off uint64, e decodedEntry, data []byte) error) error {
	if len(raw) < segHeaderSize {
		return fmt.Errorf("storage: segment image too small (%d bytes)", len(raw))
	}
	used := binary.LittleEndian.Uint64(raw[0:8])
	if used > uint64(len(raw)) {
		return fmt.Errorf("storage: watermark %d beyond image %d", used, len(raw))
	}
	off := uint64(segHeaderSize)
	for off < used {
		if off+entryHeaderSize > used {
			return fmt.Errorf("storage: truncated entry header at %d", off)
		}
		e := decodeEntryHeader(raw[off : off+entryHeaderSize])
		end := off + entrySize(e.dataLen)
		if end > used {
			return fmt.Errorf("storage: truncated entry payload at %d", off)
		}
		data := raw[off+entryHeaderSize : end]
		if e.kind == entryKindRecord && crc32.ChecksumIEEE(data) != e.crc {
			return fmt.Errorf("storage: crc mismatch at %d (token %v)", off, e.token)
		}
		if err := fn(off, e, data); err != nil {
			return err
		}
		off = end
	}
	return nil
}
