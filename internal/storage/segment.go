package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"flexlog/internal/types"
)

// PM log layout (§5.2 "the stateful log in PM").
//
// The PM region is divided into fixed-size segments. Each segment starts
// with an 8-byte used-bytes watermark followed by a stream of entries:
//
//	[u32 kind][u32 color][u64 token][u64 sn][u32 dataLen][u32 crc][data…]
//
// The watermark is the validity frontier: recovery scans entries up to it.
// Appends write the entry then advance the watermark inside one pmem
// transaction, so a crash never exposes a torn entry. The sn field is
// rewritten in place when the ordering layer commits the record.
//
// When PM fills up, the oldest fully-committed segment is flushed verbatim
// to the SSD tier and its PM slot is reused ("a contiguous portion from the
// start of the log is flushed to SSD and removed from PM").

const (
	// segHeaderSize covers the 8-byte used-bytes watermark and the 8-byte
	// segment id.
	segHeaderSize   = 16
	entryHeaderSize = 32

	entryKindRecord = 1
	entryKindTrim   = 2
)

// segment is the DRAM descriptor of one PM segment slot.
type segment struct {
	id     uint64        // monotonically increasing; names the SSD file when flushed
	slot   int           // index of the PM slot currently holding it (-1 if flushed)
	pmOff  uint64        // base offset of the slot in the pmem pool
	used   uint64        // bytes used including header (mirrors the PM watermark)
	live   int           // entries not yet trimmed
	total  int           // entries appended
	sealed bool          // no more appends (slot full)
	tokens []types.Token // tokens of entries in this segment (for reclamation)
}

func (s *segment) flushed() bool { return s.slot < 0 }

func (s *segment) ssdName() string { return fmt.Sprintf("seg-%d", s.id) }

// recSpan locates one record inside an entry's framed payload.
type recSpan struct {
	off uint32 // offset within the payload (past the entry header)
	len uint32
}

// entryLoc records where an entry (one append batch) lives.
type entryLoc struct {
	seg        *segment
	off        uint64 // offset of the entry header within the segment
	payloadLen int    // framed payload length
	spans      []recSpan
	token      types.Token
	color      types.ColorID
	firstSN    types.SN // InvalidSN until committed; records occupy [firstSN, firstSN+count)
	liveCount  int      // records not yet trimmed (== len(spans) initially)
	dead       bool     // every record trimmed
}

func (l *entryLoc) count() int { return len(l.spans) }

// lastSN returns the SN of the final record of the batch.
func (l *entryLoc) lastSN() types.SN {
	return l.firstSN + types.SN(l.count()-1)
}

// recordRef points at one record of a batch entry.
type recordRef struct {
	loc *entryLoc
	idx int
}

// encodeBatch frames a batch of records as [u32 count][u32 len_i][data_i]….
func encodeBatch(records [][]byte) []byte {
	total := 4
	for _, r := range records {
		total += 4 + len(r)
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(records)))
	off := 4
	for _, r := range records {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(r)))
		off += 4
		copy(buf[off:], r)
		off += len(r)
	}
	return buf
}

// batchSpans decodes the framing of a batch payload into record spans.
func batchSpans(payload []byte) ([]recSpan, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("storage: batch payload too short")
	}
	count := binary.LittleEndian.Uint32(payload[0:4])
	// Never trust the count for allocation: every record needs at least a
	// 4-byte length prefix, so more than len(payload)/4 records cannot fit.
	if uint64(count) > uint64(len(payload))/4 {
		return nil, fmt.Errorf("storage: batch count %d impossible for %d-byte payload", count, len(payload))
	}
	spans := make([]recSpan, 0, count)
	off := uint32(4)
	for i := uint32(0); i < count; i++ {
		if int(off)+4 > len(payload) {
			return nil, fmt.Errorf("storage: truncated batch record %d", i)
		}
		l := binary.LittleEndian.Uint32(payload[off : off+4])
		off += 4
		if int(off)+int(l) > len(payload) {
			return nil, fmt.Errorf("storage: truncated batch record %d payload", i)
		}
		spans = append(spans, recSpan{off: off, len: l})
		off += l
	}
	return spans, nil
}

func entrySize(dataLen int) uint64 {
	return uint64(entryHeaderSize + dataLen)
}

// encodeEntryHeader fills a 32-byte header.
func encodeEntryHeader(buf []byte, kind uint32, color types.ColorID, token types.Token, sn types.SN, data []byte) {
	binary.LittleEndian.PutUint32(buf[0:4], kind)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(color))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(token))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(sn))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[28:32], crc32.ChecksumIEEE(data))
}

type decodedEntry struct {
	kind    uint32
	color   types.ColorID
	token   types.Token
	sn      types.SN
	dataLen int
	crc     uint32
}

func decodeEntryHeader(buf []byte) decodedEntry {
	return decodedEntry{
		kind:    binary.LittleEndian.Uint32(buf[0:4]),
		color:   types.ColorID(binary.LittleEndian.Uint32(buf[4:8])),
		token:   types.Token(binary.LittleEndian.Uint64(buf[8:16])),
		sn:      types.SN(binary.LittleEndian.Uint64(buf[16:24])),
		dataLen: int(binary.LittleEndian.Uint32(buf[24:28])),
		crc:     binary.LittleEndian.Uint32(buf[28:32]),
	}
}

// appendEntry writes one entry into the segment's PM slot and advances the
// watermark, all inside a single pmem transaction. Returns the entry offset
// within the segment.
func (st *Store) appendEntry(seg *segment, kind uint32, color types.ColorID, token types.Token, sn types.SN, data []byte) (uint64, error) {
	need := entrySize(len(data))
	if seg.used+need > st.cfg.SegmentSize {
		return 0, errSegmentFull
	}
	buf := make([]byte, entryHeaderSize+len(data))
	encodeEntryHeader(buf, kind, color, token, sn, data)
	copy(buf[entryHeaderSize:], data)

	tx, err := st.pm.Begin()
	if err != nil {
		return 0, err
	}
	entryOff := seg.used
	if err := tx.Put(seg.pmOff+entryOff, buf); err != nil {
		tx.Abort()
		return 0, err
	}
	var wm [8]byte
	binary.LittleEndian.PutUint64(wm[:], seg.used+need)
	if err := tx.Put(seg.pmOff, wm[:]); err != nil {
		tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	seg.used += need
	seg.total++
	if kind == entryKindRecord {
		seg.live++
	}
	return entryOff, nil
}

// commitEntrySN rewrites the sn field of an entry in place (transactional).
func (st *Store) commitEntrySN(loc *entryLoc, sn types.SN) error {
	if loc.seg.flushed() {
		// A record can only be flushed once committed; uncommitted entries
		// always stay in PM.
		return fmt.Errorf("storage: commit of flushed entry %v", loc.token)
	}
	tx, err := st.pm.Begin()
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(sn))
	if err := tx.Put(loc.seg.pmOff+loc.off+16, buf[:]); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// readRecordData fetches one record of an entry from PM or the SSD tier.
// Caller holds st.mu (the tier is decided by the segment's current state).
func (st *Store) readRecordData(loc *entryLoc, idx int) ([]byte, error) {
	return st.readRecordAt(loc, idx, loc.seg.flushed())
}

// readRecordAt is readRecordData with the tier fixed by the caller's
// snapshot, so it can run without st.mu (the unlocked read path; PM reads
// must then be revalidated against slot reuse).
func (st *Store) readRecordAt(loc *entryLoc, idx int, flushed bool) ([]byte, error) {
	if idx < 0 || idx >= loc.count() {
		return nil, fmt.Errorf("storage: record index %d out of batch of %d", idx, loc.count())
	}
	sp := loc.spans[idx]
	buf := make([]byte, sp.len)
	dataOff := loc.off + entryHeaderSize + uint64(sp.off)
	if flushed {
		if err := st.dev.ReadAt(loc.seg.ssdName(), int64(dataOff), buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if err := st.pm.Read(loc.seg.pmOff+dataOff, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// scanSegment walks the entries of a segment image (either a PM slot or a
// flushed SSD file) calling fn for each decoded entry. raw must start at the
// segment header.
func scanSegment(raw []byte, fn func(off uint64, e decodedEntry, data []byte) error) error {
	if len(raw) < segHeaderSize {
		return fmt.Errorf("storage: segment image too small (%d bytes)", len(raw))
	}
	used := binary.LittleEndian.Uint64(raw[0:8])
	if used > uint64(len(raw)) {
		return fmt.Errorf("storage: watermark %d beyond image %d", used, len(raw))
	}
	off := uint64(segHeaderSize)
	for off < used {
		if off+entryHeaderSize > used {
			return fmt.Errorf("storage: truncated entry header at %d", off)
		}
		e := decodeEntryHeader(raw[off : off+entryHeaderSize])
		end := off + entrySize(e.dataLen)
		if end > used {
			return fmt.Errorf("storage: truncated entry payload at %d", off)
		}
		data := raw[off+entryHeaderSize : end]
		if e.kind == entryKindRecord && crc32.ChecksumIEEE(data) != e.crc {
			return fmt.Errorf("storage: crc mismatch at %d (token %v)", off, e.token)
		}
		if err := fn(off, e, data); err != nil {
			return err
		}
		off = end
	}
	return nil
}
