package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flexlog/internal/lsm"
	"flexlog/internal/ssd"
	"flexlog/internal/storage/tier"
	"flexlog/internal/types"
)

// fill appends and commits records [from, to) of the color, one per SN.
func fill(t *testing.T, st *Store, color types.ColorID, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		token := types.MakeToken(uint32(color), uint32(i))
		if err := st.Put(color, token, payload(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if err := st.Commit(token, sn(i)); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
}

// evictAll force-evicts until no candidate remains.
func evictAll(t *testing.T, st *Store) int {
	t.Helper()
	n := 0
	for {
		if err := st.ForceEvict(); err != nil {
			return n
		}
		n++
	}
}

func TestOpenOptionsCompose(t *testing.T) {
	cfg := smallConfig()
	st, err := Open(cfg, WithPMBudget(1024), WithCheckpointEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.cfg.PMBudget != 1024 || st.cfg.CheckpointEvery != 4 {
		t.Fatalf("options not applied: %+v", st.cfg)
	}
	if st.lc == nil {
		t.Fatal("lifecycle not started despite budget")
	}
	// The deprecated shims must produce equivalent stores.
	st2, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.lc != nil {
		t.Fatal("lifecycle started without budget or checkpointing")
	}
	if st2.cold == nil || st2.cold.Kind() != "ssd" {
		t.Fatalf("default cold tier = %v", st2.cold)
	}
}

func TestOpenWithLSMColdTier(t *testing.T) {
	dev := ssd.New(ssd.Zero())
	lt, err := tier.NewLSM(lsm.Config{MemTableBytes: 16 << 10, CompactionTrigger: 4, SyncWAL: true}, dev)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(smallConfig(), WithColdTier(lt))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fill(t, st, colorA, 1, 30) // spills several segments into the LSM
	if evictAll(t, st) == 0 && st.Stats().Flushes == 0 {
		t.Fatal("nothing reached the cold tier")
	}
	for i := 1; i < 30; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d = %q, %v", i, got, err)
		}
	}
	if st.Stats().Cold.Puts == 0 {
		t.Fatal("cold tier saw no puts")
	}
}

func TestBackgroundEvictionUnderBudget(t *testing.T) {
	cfg := smallConfig()
	cfg.PMBudget = cfg.SegmentSize * 2 // of 3 slots, keep at most ~2 resident
	cfg.LifecycleInterval = time.Millisecond
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fill(t, st, colorA, 1, 60) // appends must never stall under the budget
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st.Stats().Evictions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background eviction under PM budget pressure")
		}
		time.Sleep(time.Millisecond)
	}
	// Every record is still readable; cold ones fall through to the SSD.
	st.cache.drop(colorA, sn(1)) // defeat the fill-time cache for one SN
	for i := 1; i < 60; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d = %q, %v", i, got, err)
		}
	}
	if st.Stats().ColdMissReads == 0 {
		t.Fatal("no read was served from the cold tier")
	}
}

func TestCheckpointBoundsRecoveryReplay(t *testing.T) {
	cfg := smallConfig()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	replayAt := func(hi int) RecoveryStats {
		t.Helper()
		st.Crash()
		if err := st.Recover(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < hi; i++ {
			got, err := st.Get(colorA, sn(i))
			if err != nil || !bytes.Equal(got, payload(i)) {
				t.Fatalf("after recover, get %d = %q, %v", i, got, err)
			}
		}
		return st.LastRecovery()
	}

	fill(t, st, colorA, 1, 40)
	evictAll(t, st)
	if err := st.ForceCheckpoint(); err != nil {
		t.Fatal(err)
	}
	r1 := replayAt(40)
	if r1.CheckpointSeq != 1 || r1.RestoredEntries == 0 {
		t.Fatalf("first recovery ignored the checkpoint: %+v", r1)
	}

	// Grow the log 3x; each round re-checkpoints, so the replayed suffix
	// (scanned images) must stay flat instead of growing with the log.
	var prev = r1
	for round, hi := 0, 40; round < 3; round++ {
		fill(t, st, colorA, hi, hi+40)
		hi += 40
		evictAll(t, st)
		if err := st.ForceCheckpoint(); err != nil {
			t.Fatal(err)
		}
		r := replayAt(hi)
		if r.RestoredEntries <= prev.RestoredEntries-5 {
			t.Fatalf("round %d: restored entries shrank: %+v vs %+v", round, r, prev)
		}
		if r.ReplayedEntries > r1.ReplayedEntries+5 {
			t.Fatalf("round %d: replayed suffix grew with the log: %+v (baseline %+v)", round, r, r1)
		}
		prev = r
	}
}

func TestCrashMidEviction(t *testing.T) {
	cfg := smallConfig()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fill(t, st, colorA, 1, 25)
	st.InjectCrash(CrashMidEviction)
	if err := st.ForceEvict(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("ForceEvict with armed failpoint: %v", err)
	}
	// The crash hit between the cold Put and its Sync: the blob may be
	// torn, but the PM copy survived, so recovery must lose nothing.
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 25; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d after mid-eviction crash = %q, %v", i, got, err)
		}
	}
}

func TestCrashMidCheckpoint(t *testing.T) {
	cfg := smallConfig()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fill(t, st, colorA, 1, 20)
	evictAll(t, st)
	if err := st.ForceCheckpoint(); err != nil {
		t.Fatal(err)
	}
	fill(t, st, colorA, 20, 30)
	evictAll(t, st)
	st.InjectCrash(CrashMidCheckpoint)
	if err := st.ForceCheckpoint(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("ForceCheckpoint with armed failpoint: %v", err)
	}
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	r := st.LastRecovery()
	if r.CheckpointSeq != 1 {
		t.Fatalf("recovery did not fall back to the previous checkpoint: %+v", r)
	}
	for i := 1; i < 30; i++ {
		got, err := st.Get(colorA, sn(i))
		if err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d after mid-checkpoint crash = %q, %v", i, got, err)
		}
	}
}

func TestCheckpointTruncatedSentinel(t *testing.T) {
	cfg := smallConfig()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fill(t, st, colorA, 1, 20)
	if _, _, err := st.Trim(colorA, sn(8)); err != nil {
		t.Fatal(err)
	}
	evictAll(t, st)
	if err := st.ForceCheckpoint(); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	_, err = st.Get(colorA, sn(3))
	if !errors.Is(err, ErrTrimmed) || !errors.Is(err, ErrCheckpointTruncated) {
		t.Fatalf("read below checkpoint floor: %v", err)
	}
	// Above the floor: plain reads still work.
	if got, err := st.Get(colorA, sn(15)); err != nil || !bytes.Equal(got, payload(15)) {
		t.Fatalf("get above floor = %q, %v", got, err)
	}
}

func TestColdGCReclaimsCoveredDeadSegments(t *testing.T) {
	cfg := smallConfig()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fill(t, st, colorA, 1, 30)
	evicted := evictAll(t, st)
	if evicted == 0 {
		t.Fatal("nothing evicted")
	}
	if _, _, err := st.Trim(colorA, sn(29)); err != nil {
		t.Fatal(err)
	}
	// GC must refuse until a checkpoint covers the trim markers…
	st.gcCold()
	if st.Stats().GCSegments != 0 {
		t.Fatal("cold GC ran before a checkpoint covered the segments")
	}
	if err := st.ForceCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// …then reclaim the dead cold blobs.
	st.gcCold()
	s := st.Stats()
	if s.GCSegments == 0 {
		t.Fatalf("cold GC reclaimed nothing after checkpoint: %+v", s)
	}
	// Crash-safety of the deletion: the trims survive recovery even though
	// the blobs are gone.
	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(colorA, sn(10)); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("trimmed record resurfaced after GC+crash: %v", err)
	}
}

// TestTieredLifecycleStress drives appends, cold reads, trims, forced
// evictions and checkpoints concurrently (run with -race).
func TestTieredLifecycleStress(t *testing.T) {
	cfg := TestConfig()
	cfg.SegmentSize = 1024
	cfg.NumSegments = 4
	cfg.CacheBytes = 2048
	cfg.PMBudget = 2048
	cfg.CheckpointEvery = 8
	cfg.LifecycleInterval = time.Millisecond
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const perColor = 300
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for _, color := range []types.ColorID{colorA, colorB} {
		color := color
		wg.Add(1)
		go func() { // writer
			defer wg.Done()
			for i := 1; i <= perColor; i++ {
				token := types.MakeToken(uint32(color), uint32(i))
				if err := st.Put(color, token, payload(i)); err != nil {
					errCh <- fmt.Errorf("put %v/%d: %w", color, i, err)
					return
				}
				if err := st.Commit(token, types.MakeSN(1, uint32(i))); err != nil {
					errCh <- fmt.Errorf("commit %v/%d: %w", color, i, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // reader
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(color)))
			for i := 0; i < 2*perColor; i++ {
				s := types.MakeSN(1, uint32(1+rng.Intn(perColor)))
				data, err := st.Get(color, s)
				switch {
				case err == nil:
					want := payload(int(s.Counter()))
					if !bytes.Equal(data, want) {
						errCh <- fmt.Errorf("get %v/%v = %q, want %q", color, s, data, want)
						return
					}
				case errors.Is(err, ErrNotFound), errors.Is(err, ErrTrimmed):
				default:
					errCh <- fmt.Errorf("get %v/%v: %w", color, s, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // trimmer
			defer wg.Done()
			for i := 0; i < 10; i++ {
				floor := uint32((i + 1) * perColor / 20) // trim the older half
				if floor == 0 {
					continue
				}
				if _, _, err := st.Trim(color, types.MakeSN(1, floor)); err != nil {
					errCh <- fmt.Errorf("trim %v: %w", color, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Add(1)
	go func() { // lifecycle forcing
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = st.ForceEvict() // "no evictable segment" is fine
			if err := st.ForceCheckpoint(); err != nil && !errors.Is(err, ErrInjectedCrash) {
				errCh <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Settle and verify the surviving window reads back intact.
	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, color := range []types.ColorID{colorA, colorB} {
		trimmed := st.Trimmed(color)
		for i := int(trimmed.Counter()) + 1; i <= perColor; i++ {
			got, err := st.Get(color, types.MakeSN(1, uint32(i)))
			if err != nil || !bytes.Equal(got, payload(i)) {
				t.Fatalf("post-stress get %v/%d = %q, %v", color, i, got, err)
			}
		}
	}
}
