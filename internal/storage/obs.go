package storage

import (
	"flexlog/internal/obs"
)

// This file publishes the storage stack into the observability registry.
// Everything is func-backed: the store's existing counters (cache,
// flush/recovery, group commit, PM and SSD device stats) stay the single
// source of truth and are read at scrape time. The only live recording is
// the two latency histograms — PM transaction time and group-commit
// window time — created in initObs and recorded by the write paths; both
// are nil-safe, so a store built without a registry pays nothing.

// initObs creates the store's histograms and registers its func-backed
// metrics. Called by every constructor before the group committer starts;
// a nil cfg.Obs leaves every histogram nil (recording no-ops).
func (st *Store) initObs() {
	reg := st.cfg.Obs
	if reg == nil {
		return
	}
	lb := obs.Labels{"node": st.cfg.ObsNode}
	st.pmTxH = reg.Histogram("flexlog_pm_tx_seconds",
		"Duration of one persistent-memory transaction (undo-log snapshot through commit).", lb)
	st.gcWindowH = reg.Histogram("flexlog_gc_window_seconds",
		"Duration of one group-commit window: first op dequeued through all waiters released.", lb)

	reg.CounterFunc("flexlog_store_cache_hits_total",
		"DRAM cache hits on the read path.", lb,
		func() uint64 { h, _ := st.cache.stats(); return h })
	reg.CounterFunc("flexlog_store_cache_misses_total",
		"DRAM cache misses on the read path.", lb,
		func() uint64 { _, m := st.cache.stats(); return m })
	reg.CounterFunc("flexlog_store_flushes_total",
		"PM segments flushed to the SSD tier to free slots.", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.flushes })
	reg.CounterFunc("flexlog_store_recoveries_total",
		"Recovery scans performed (crash restarts).", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.recovers })
	reg.GaugeFunc("flexlog_store_records",
		"Persisted append batches currently indexed (committed or not).", lb,
		func() float64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return float64(len(st.byToken)) })

	// Group-commit engine (zero until cfg.GroupCommit creates it; the
	// closures tolerate a nil committer so registration order is free).
	reg.CounterFunc("flexlog_gc_windows_total",
		"Group-commit windows committed (PM transactions shared by concurrent writers).", lb,
		func() uint64 {
			if st.gc == nil {
				return 0
			}
			return st.gc.windows.Load()
		})
	reg.CounterFunc("flexlog_gc_ops_total",
		"Writes submitted to the group committer.", lb,
		func() uint64 {
			if st.gc == nil {
				return 0
			}
			return st.gc.ops.Load()
		})
	reg.CounterFunc("flexlog_gc_fused_total",
		"Payload writes saved by contiguous fusion inside group-commit windows.", lb,
		func() uint64 {
			if st.gc == nil {
				return 0
			}
			return st.gc.fused.Load()
		})

	// Device tiers: the simulated PM pool and SSD keep their own op
	// counters; publish them per direction/outcome.
	reg.CounterFunc("flexlog_pm_ops_total",
		"Persistent-memory device operations, by op.", withKV(lb, "op", "read"),
		func() uint64 { return st.pm.Stats().Reads })
	reg.CounterFunc("flexlog_pm_ops_total",
		"Persistent-memory device operations, by op.", withKV(lb, "op", "write"),
		func() uint64 { return st.pm.Stats().Writes })
	reg.CounterFunc("flexlog_pm_bytes_total",
		"Persistent-memory bytes moved, by direction.", withKV(lb, "dir", "read"),
		func() uint64 { return st.pm.Stats().BytesRead })
	reg.CounterFunc("flexlog_pm_bytes_total",
		"Persistent-memory bytes moved, by direction.", withKV(lb, "dir", "write"),
		func() uint64 { return st.pm.Stats().BytesWritten })
	reg.CounterFunc("flexlog_pm_tx_total",
		"Persistent-memory transactions, by outcome.", withKV(lb, "outcome", "commit"),
		func() uint64 { return st.pm.Stats().TxCommits })
	reg.CounterFunc("flexlog_pm_tx_total",
		"Persistent-memory transactions, by outcome.", withKV(lb, "outcome", "abort"),
		func() uint64 { return st.pm.Stats().TxAborts })
	reg.CounterFunc("flexlog_pm_tx_total",
		"Persistent-memory transactions, by outcome.", withKV(lb, "outcome", "rollback"),
		func() uint64 { return st.pm.Stats().RecoveryRollbks })
	reg.CounterFunc("flexlog_ssd_ops_total",
		"SSD tier operations, by op.", withKV(lb, "op", "read"),
		func() uint64 { return st.dev.Stats().Reads })
	reg.CounterFunc("flexlog_ssd_ops_total",
		"SSD tier operations, by op.", withKV(lb, "op", "write"),
		func() uint64 { return st.dev.Stats().Writes })
}

// withKV copies a label set and adds one more label.
func withKV(lb obs.Labels, k, v string) obs.Labels {
	out := obs.Labels{k: v}
	for key, val := range lb {
		out[key] = val
	}
	return out
}
