package storage

import (
	"flexlog/internal/obs"
)

// This file publishes the storage stack into the observability registry.
// Everything is func-backed: the store's existing counters (cache,
// flush/recovery, group commit, PM and SSD device stats) stay the single
// source of truth and are read at scrape time. The only live recording is
// the two latency histograms — PM transaction time and group-commit
// window time — created in initObs and recorded by the write paths; both
// are nil-safe, so a store built without a registry pays nothing.

// initObs creates the store's histograms and registers its func-backed
// metrics. Called by every constructor before the group committer starts;
// a nil cfg.Obs leaves every histogram nil (recording no-ops).
func (st *Store) initObs() {
	reg := st.cfg.Obs
	if reg == nil {
		return
	}
	lb := obs.Labels{"node": st.cfg.ObsNode}
	st.pmTxH = reg.Histogram("flexlog_pm_tx_seconds",
		"Duration of one persistent-memory transaction (undo-log snapshot through commit).", lb)
	st.gcWindowH = reg.Histogram("flexlog_gc_window_seconds",
		"Duration of one group-commit window: first op dequeued through all waiters released.", lb)

	reg.CounterFunc("flexlog_store_cache_hits_total",
		"DRAM cache hits on the read path.", lb,
		func() uint64 { h, _ := st.cache.stats(); return h })
	reg.CounterFunc("flexlog_store_cache_misses_total",
		"DRAM cache misses on the read path.", lb,
		func() uint64 { _, m := st.cache.stats(); return m })
	reg.CounterFunc("flexlog_store_flushes_total",
		"PM segments flushed to the SSD tier to free slots.", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.flushes })
	reg.CounterFunc("flexlog_store_recoveries_total",
		"Recovery scans performed (crash restarts).", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.recovers })
	reg.GaugeFunc("flexlog_store_records",
		"Persisted append batches currently indexed (committed or not).", lb,
		func() float64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return float64(len(st.byToken)) })

	// Group-commit engine (zero until cfg.GroupCommit creates it; the
	// closures tolerate a nil committer so registration order is free).
	reg.CounterFunc("flexlog_gc_windows_total",
		"Group-commit windows committed (PM transactions shared by concurrent writers).", lb,
		func() uint64 {
			if st.gc == nil {
				return 0
			}
			return st.gc.windows.Load()
		})
	reg.CounterFunc("flexlog_gc_ops_total",
		"Writes submitted to the group committer.", lb,
		func() uint64 {
			if st.gc == nil {
				return 0
			}
			return st.gc.ops.Load()
		})
	reg.CounterFunc("flexlog_gc_fused_total",
		"Payload writes saved by contiguous fusion inside group-commit windows.", lb,
		func() uint64 {
			if st.gc == nil {
				return 0
			}
			return st.gc.fused.Load()
		})

	// Device tiers: the simulated PM pool and SSD keep their own op
	// counters; publish them per direction/outcome.
	reg.CounterFunc("flexlog_pm_ops_total",
		"Persistent-memory device operations, by op.", withKV(lb, "op", "read"),
		func() uint64 { return st.pm.Stats().Reads })
	reg.CounterFunc("flexlog_pm_ops_total",
		"Persistent-memory device operations, by op.", withKV(lb, "op", "write"),
		func() uint64 { return st.pm.Stats().Writes })
	reg.CounterFunc("flexlog_pm_bytes_total",
		"Persistent-memory bytes moved, by direction.", withKV(lb, "dir", "read"),
		func() uint64 { return st.pm.Stats().BytesRead })
	reg.CounterFunc("flexlog_pm_bytes_total",
		"Persistent-memory bytes moved, by direction.", withKV(lb, "dir", "write"),
		func() uint64 { return st.pm.Stats().BytesWritten })
	reg.CounterFunc("flexlog_pm_tx_total",
		"Persistent-memory transactions, by outcome.", withKV(lb, "outcome", "commit"),
		func() uint64 { return st.pm.Stats().TxCommits })
	reg.CounterFunc("flexlog_pm_tx_total",
		"Persistent-memory transactions, by outcome.", withKV(lb, "outcome", "abort"),
		func() uint64 { return st.pm.Stats().TxAborts })
	reg.CounterFunc("flexlog_pm_tx_total",
		"Persistent-memory transactions, by outcome.", withKV(lb, "outcome", "rollback"),
		func() uint64 { return st.pm.Stats().RecoveryRollbks })
	// The closures read through ssdDevice()/st.cold at scrape time, so
	// they stay live if a future option swaps the tier implementation.
	reg.CounterFunc("flexlog_ssd_ops_total",
		"SSD tier operations, by op.", withKV(lb, "op", "read"),
		func() uint64 {
			if dev := st.ssdDevice(); dev != nil {
				return dev.Stats().Reads
			}
			return 0
		})
	reg.CounterFunc("flexlog_ssd_ops_total",
		"SSD tier operations, by op.", withKV(lb, "op", "write"),
		func() uint64 {
			if dev := st.ssdDevice(); dev != nil {
				return dev.Stats().Writes
			}
			return 0
		})

	// Cold tier (blob-level, regardless of backend) and lifecycle.
	st.evictionH = reg.Histogram("flexlog_tier_eviction_seconds",
		"Duration of one background segment eviction (PM snapshot through cold-tier sync).", lb)
	st.checkpointH = reg.Histogram("flexlog_checkpoint_seconds",
		"Duration of one checkpoint write (snapshot encode through cold-tier sync).", lb)

	coldLb := withKV(lb, "tier", st.cold.Kind())
	reg.CounterFunc("flexlog_tier_ops_total",
		"Cold-tier blob operations, by op.", withKV(coldLb, "op", "put"),
		func() uint64 { return st.cold.Stats().Puts })
	reg.CounterFunc("flexlog_tier_ops_total",
		"Cold-tier blob operations, by op.", withKV(coldLb, "op", "get"),
		func() uint64 { return st.cold.Stats().Gets })
	reg.CounterFunc("flexlog_tier_ops_total",
		"Cold-tier blob operations, by op.", withKV(coldLb, "op", "delete"),
		func() uint64 { return st.cold.Stats().Deletes })
	reg.CounterFunc("flexlog_tier_ops_total",
		"Cold-tier blob operations, by op.", withKV(coldLb, "op", "sync"),
		func() uint64 { return st.cold.Stats().Syncs })
	reg.CounterFunc("flexlog_tier_bytes_total",
		"Cold-tier bytes moved, by direction.", withKV(coldLb, "dir", "in"),
		func() uint64 { return st.cold.Stats().BytesIn })
	reg.CounterFunc("flexlog_tier_bytes_total",
		"Cold-tier bytes moved, by direction.", withKV(coldLb, "dir", "out"),
		func() uint64 { return st.cold.Stats().BytesOut })
	reg.GaugeFunc("flexlog_tier_blobs",
		"Blobs currently stored on the cold tier.", coldLb,
		func() float64 { return float64(st.cold.Stats().Blobs) })
	reg.GaugeFunc("flexlog_tier_occupied_bytes",
		"Bytes currently occupied on the cold tier.", coldLb,
		func() float64 { return float64(st.cold.Stats().Bytes) })

	reg.CounterFunc("flexlog_tier_evictions_total",
		"Segments evicted from PM to the cold tier by the background lifecycle.", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.evictions })
	reg.CounterFunc("flexlog_tier_evicted_bytes_total",
		"Bytes evicted from PM to the cold tier by the background lifecycle.", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.evictedBytes })
	reg.CounterFunc("flexlog_tier_gc_segments_total",
		"Segments reclaimed by trim-driven garbage collection (both tiers).", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.gcSegments })
	reg.CounterFunc("flexlog_tier_gc_bytes_total",
		"Bytes reclaimed by trim-driven garbage collection (both tiers).", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.gcBytes })
	reg.CounterFunc("flexlog_tier_miss_reads_total",
		"PM-miss reads served from the cold tier.", lb,
		func() uint64 { return st.coldMisses.Load() })
	reg.GaugeFunc("flexlog_tier_resident_segments",
		"Segments currently occupying PM slots.", lb,
		func() float64 {
			st.alloc.RLock()
			defer st.alloc.RUnlock()
			n := 0
			for _, seg := range st.segs {
				if !seg.flushed() {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("flexlog_tier_pm_budget_bytes",
		"Configured PM budget for resident segments (0: unbounded).", lb,
		func() float64 { return float64(st.cfg.PMBudget) })

	reg.CounterFunc("flexlog_checkpoints_total",
		"Checkpoints written since the store opened.", lb,
		func() uint64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return st.checkpoints })
	reg.GaugeFunc("flexlog_checkpoint_seq",
		"Sequence number of the last durable checkpoint.", lb,
		func() float64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return float64(st.ckptSeq) })
	reg.GaugeFunc("flexlog_checkpoint_entries",
		"Entries covered by the last durable checkpoint.", lb,
		func() float64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return float64(st.ckptEntries) })
	reg.GaugeFunc("flexlog_checkpoint_uncovered_entries",
		"Entries flushed to the cold tier since the last durable checkpoint (replay debt).", lb,
		func() float64 { st.alloc.RLock(); defer st.alloc.RUnlock(); return float64(st.uncovered) })
}

// withKV copies a label set and adds one more label.
func withKV(lb obs.Labels, k, v string) obs.Labels {
	out := obs.Labels{k: v}
	for key, val := range lb {
		out[key] = val
	}
	return out
}
