package storage

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"flexlog/internal/types"
)

// TestParallelWritePathStress hammers the sharded-lock store the way the
// replica write lane does: one writer per color running PutBatch+Commit,
// concurrent trimmers sliding each color's window, and readers validating
// committed payloads — all with group commit folding the PM writes. Run
// with -race this exercises the per-color index locks, the narrow
// allocator lock, and the committer windows together.
func TestParallelWritePathStress(t *testing.T) {
	cfg := Config{SegmentSize: 16 << 10, NumSegments: 8, CacheBytes: 64 << 10, GroupCommit: true}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const colors = 8
	const perColor = 300
	payloadFor := func(c, i int) []byte {
		return []byte(fmt.Sprintf("color-%02d-rec-%05d", c, i))
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2*colors)
	var trimFloor [colors]atomic.Uint32

	for c := 0; c < colors; c++ {
		color := types.ColorID(c + 1)
		// Writer: every color appends and commits its own SN sequence.
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 1; i <= perColor; i++ {
				tok := types.MakeToken(uint32(c+1), uint32(i))
				if err := st.PutBatch(color, tok, [][]byte{payloadFor(c, i)}); err != nil {
					errCh <- fmt.Errorf("color %d put %d: %w", c, i, err)
					return
				}
				if err := st.Commit(tok, types.MakeSN(1, uint32(i))); err != nil {
					errCh <- fmt.Errorf("color %d commit %d: %w", c, i, err)
					return
				}
			}
		}(c)
		// Trimmer+reader: slides a window behind the writer and spot-checks
		// records above the trim frontier.
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				max := st.MaxSN(color)
				if max.Valid() && max.Counter() > 100 {
					floor := max.Counter() - 100
					if _, _, err := st.Trim(color, types.MakeSN(1, floor)); err != nil {
						errCh <- fmt.Errorf("color %d trim: %w", c, err)
						return
					}
					trimFloor[c].Store(floor)
					// Read a committed record above the frontier.
					i := int(floor) + 50
					if data, err := st.Get(color, types.MakeSN(1, uint32(i))); err == nil {
						if !bytes.Equal(data, payloadFor(c, i)) {
							errCh <- fmt.Errorf("color %d corrupt read at %d: %q", c, i, data)
							return
						}
					}
				}
				if max.Valid() && max.Counter() >= perColor {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Full validation: every color's retained suffix reads back intact.
	for c := 0; c < colors; c++ {
		color := types.ColorID(c + 1)
		floor := trimFloor[c].Load()
		recs, err := st.ScanFrom(color, types.MakeSN(1, floor))
		if err != nil {
			t.Fatalf("color %d scan: %v", c, err)
		}
		if len(recs) == 0 {
			t.Fatalf("color %d: empty retained log (floor %d)", c, floor)
		}
		for _, rec := range recs {
			want := payloadFor(c, int(rec.SN.Counter()))
			if !bytes.Equal(rec.Data, want) {
				t.Fatalf("color %d sn %v: got %q want %q", c, rec.SN, rec.Data, want)
			}
		}
	}
	if gs := st.Stats().GC; gs.Windows == 0 || gs.Ops == 0 {
		t.Fatalf("group committer idle: %+v", gs)
	}
}

// TestGroupCommitCrashMidWindow crashes the pool while a burst of
// concurrent PutBatches is in flight. The contract of the whole-window
// rollback: a batch whose persistence call RETURNED success was in a
// committed transaction and must survive recovery; a batch whose call
// returned an error was rolled back with its window and must be absent —
// nothing in between, and nothing committed may be lost.
func TestGroupCommitCrashMidWindow(t *testing.T) {
	cfg := TestConfig()
	cfg.GroupCommit = true
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Committed prefix: must survive verbatim.
	const committed = 24
	for i := 1; i <= committed; i++ {
		tok := types.MakeToken(1, uint32(i))
		if err := st.PutBatch(colorA, tok, [][]byte{payload(i)}); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(tok, sn(i)); err != nil {
			t.Fatal(err)
		}
	}

	// In-flight burst racing the crash.
	const burst = 32
	var persisted [burst + 1]atomic.Bool
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			tok := types.MakeToken(2, uint32(i))
			if err := st.PutBatch(colorB, tok, [][]byte{payload(1000 + i)}); err == nil {
				persisted[i].Store(true)
			}
		}(i)
	}
	close(start)
	st.Crash()
	wg.Wait()

	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}

	// The committed prefix is intact.
	for i := 1; i <= committed; i++ {
		data, err := st.Get(colorA, sn(i))
		if err != nil {
			t.Fatalf("committed record %d lost: %v", i, err)
		}
		if !bytes.Equal(data, payload(i)) {
			t.Fatalf("committed record %d corrupt: %q", i, data)
		}
	}
	// Burst batches: present iff their persistence call succeeded.
	for i := 1; i <= burst; i++ {
		tok := types.MakeToken(2, uint32(i))
		if persisted[i].Load() && !st.Has(tok) {
			t.Fatalf("acked batch %d lost by crash", i)
		}
		if !persisted[i].Load() && st.Has(tok) {
			t.Fatalf("failed batch %d resurrected by recovery", i)
		}
	}
	// Survivors are re-issued by Recover as uncommitted work.
	for _, b := range st.Uncommitted() {
		if b.Color != colorB {
			t.Fatalf("unexpected uncommitted color %v", b.Color)
		}
	}

	// The store is fully operational after recovery: the uncommitted
	// survivors can be committed and new appends flow through a fresh
	// committer window.
	next := 1
	for i := 1; i <= burst; i++ {
		tok := types.MakeToken(2, uint32(i))
		if !st.Has(tok) {
			continue
		}
		if err := st.Commit(tok, types.MakeSN(1, uint32(next))); err != nil {
			t.Fatalf("post-recovery commit: %v", err)
		}
		next++
	}
	tok := types.MakeToken(3, 1)
	if err := st.PutBatch(colorA, tok, [][]byte{payload(9999)}); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if err := st.Commit(tok, sn(committed+1)); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	if data, err := st.Get(colorA, sn(committed+1)); err != nil || !bytes.Equal(data, payload(9999)) {
		t.Fatalf("post-recovery read: %v %q", err, data)
	}
}
