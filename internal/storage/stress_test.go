package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"flexlog/internal/types"
)

// TestConcurrentAppendTrimReadStress hammers the store with concurrent
// writers, trimmers and readers over many segment rollovers, then crashes
// and recovers, verifying that no retained record was ever corrupted and
// the store remains fully operational.
func TestConcurrentAppendTrimReadStress(t *testing.T) {
	cfg := Config{SegmentSize: 8 << 10, NumSegments: 6, CacheBytes: 32 << 10}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 400
	var next atomic.Uint32 // global SN counter
	var trimFloor atomic.Uint32

	payloadFor := func(sn uint32) []byte {
		return []byte(fmt.Sprintf("payload-of-%08d", sn))
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)

	// Writers: Put+Commit with globally unique SNs.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sn := next.Add(1)
				tok := types.MakeToken(uint32(w+1), uint32(i+1))
				if err := st.Put(colorA, tok, payloadFor(sn)); err != nil {
					errCh <- fmt.Errorf("put: %w", err)
					return
				}
				if err := st.Commit(tok, types.MakeSN(1, sn)); err != nil {
					errCh <- fmt.Errorf("commit: %w", err)
					return
				}
			}
		}(w)
	}
	// Trimmer: keeps a sliding window of ~300 records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			frontier := next.Load()
			if frontier >= uint32(writers*perWriter) {
				return
			}
			if frontier > 300 {
				cut := frontier - 300
				trimFloor.Store(cut)
				if _, _, err := st.Trim(colorA, types.MakeSN(1, cut)); err != nil {
					errCh <- fmt.Errorf("trim: %w", err)
					return
				}
			}
		}
	}()
	// Readers: any successfully read record must carry its own payload.
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				frontier := next.Load()
				if frontier < 2 {
					continue
				}
				sn := uint32(rng.Intn(int(frontier))) + 1
				data, err := st.Get(colorA, types.MakeSN(1, sn))
				if err != nil {
					continue // trimmed / not yet committed: fine
				}
				if !bytes.Equal(data, payloadFor(sn)) {
					errCh <- fmt.Errorf("read sn=%d returned %q", sn, data)
					return
				}
			}
		}(int64(rdr) + 42)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Crash + recover, then verify the retained window end-to-end.
	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	total := uint32(writers * perWriter)
	floor := trimFloor.Load()
	missing := 0
	for sn := floor + 1; sn <= total; sn++ {
		data, err := st.Get(colorA, types.MakeSN(1, sn))
		if err != nil {
			missing++
			continue
		}
		if !bytes.Equal(data, payloadFor(sn)) {
			t.Fatalf("post-recovery sn=%d = %q", sn, data)
		}
	}
	if missing > 0 {
		t.Fatalf("%d retained records missing after recovery", missing)
	}
	// Still writable.
	if err := st.Put(colorB, types.MakeToken(9, 1), []byte("alive")); err != nil {
		t.Fatal(err)
	}
}
