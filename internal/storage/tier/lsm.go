package tier

import (
	"encoding/binary"
	"fmt"
	"sync"

	"flexlog/internal/lsm"
	"flexlog/internal/ssd"
)

// LSM serves blobs out of the log-structured merge engine (the RocksDB
// stand-in of §9.1) — the backend for deployments that want the cold tier
// compacted and indexed rather than stored as raw segment files.
//
// Each Put writes the payload under a fresh versioned key "b:<name>@<v>";
// the blob becomes visible when Sync rewrites the directory record (key
// "!dir", mapping name -> versioned key + size). Crash recovery reads the
// directory back, so a blob is exactly as durable as the last Sync that
// published it — version keys orphaned by a crash are invisible and
// reclaimed the next time their name is synced or deleted.
type LSM struct {
	dev *ssd.Device
	cfg lsm.Config

	mu      sync.Mutex
	db      *lsm.DB
	dir     map[string]lsmBlob
	ver     uint64
	cleanup []string // versioned keys superseded since the last Sync
	dirty   bool
	stats   Stats
}

type lsmBlob struct {
	key  string
	size int
}

const lsmDirKey = "!dir"

// NewLSM opens an LSM-backed tier over the device, picking up any
// directory a previous incarnation synced (the WAL replay inside
// lsm.Open makes this the attach path too).
func NewLSM(cfg lsm.Config, dev *ssd.Device) (*LSM, error) {
	db, err := lsm.Open(cfg, dev)
	if err != nil {
		return nil, err
	}
	t := &LSM{dev: dev, cfg: cfg, db: db, dir: make(map[string]lsmBlob)}
	if err := t.loadDir(); err != nil {
		return nil, err
	}
	return t, nil
}

// Device exposes the underlying device for snapshotting (ssd.SaveTo).
func (t *LSM) Device() *ssd.Device { return t.dev }

// Kind implements Tier.
func (t *LSM) Kind() string { return "lsm" }

// Put implements Tier.
func (t *LSM) Put(name string, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ver++
	key := fmt.Sprintf("b:%s@%d", name, t.ver)
	if err := t.db.Put([]byte(key), data); err != nil {
		return err
	}
	if old, ok := t.dir[name]; ok {
		t.cleanup = append(t.cleanup, old.key)
	}
	t.dir[name] = lsmBlob{key: key, size: len(data)}
	t.dirty = true
	t.stats.Puts++
	t.stats.BytesIn += uint64(len(data))
	return nil
}

// Get implements Tier.
func (t *LSM) Get(name string, off int64, buf []byte) error {
	t.mu.Lock()
	b, ok := t.dir[name]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 || off+int64(len(buf)) > int64(b.size) {
		return fmt.Errorf("tier: read [%d,%d) beyond blob %s of %d bytes", off, off+int64(len(buf)), name, b.size)
	}
	data, err := t.db.Get([]byte(b.key))
	if err != nil {
		return err
	}
	copy(buf, data[off:])
	t.mu.Lock()
	t.stats.Gets++
	t.stats.BytesOut += uint64(len(buf))
	t.mu.Unlock()
	return nil
}

// Delete implements Tier.
func (t *LSM) Delete(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.dir[name]
	if !ok {
		return nil
	}
	delete(t.dir, name)
	t.cleanup = append(t.cleanup, b.key)
	t.dirty = true
	t.stats.Deletes++
	return nil
}

// Size implements Tier.
func (t *LSM) Size(name string) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.dir[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(b.size), nil
}

// List implements Tier.
func (t *LSM) List() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.dir))
	for n := range t.dir {
		names = append(names, n)
	}
	return names
}

// Sync implements Tier: the directory record is rewritten (publishing
// every Put and Delete since the last Sync), then superseded version keys
// are dropped. The engine's WAL makes each write durable on its own; the
// directory flip is the atomic visibility point.
func (t *LSM) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirty {
		if err := t.db.Put([]byte(lsmDirKey), t.encodeDir()); err != nil {
			return err
		}
		for _, key := range t.cleanup {
			if err := t.db.Delete([]byte(key)); err != nil {
				return err
			}
		}
		t.cleanup = t.cleanup[:0]
		t.dirty = false
	}
	t.stats.Syncs++
	return nil
}

// encodeDir serializes the directory. Caller holds t.mu.
func (t *LSM) encodeDir() []byte {
	var out []byte
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(t.dir)))
	out = append(out, n[:]...)
	for name, b := range t.dir {
		for _, s := range []string{name, b.key} {
			binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
			out = append(out, n[:]...)
			out = append(out, s...)
		}
		binary.LittleEndian.PutUint32(n[:], uint32(b.size))
		out = append(out, n[:]...)
	}
	return out
}

// loadDir reads the directory record back (empty engine: no directory).
func (t *LSM) loadDir() error {
	raw, err := t.db.Get([]byte(lsmDirKey))
	if err != nil {
		if err == lsm.ErrNotFound {
			return nil
		}
		return err
	}
	dir := make(map[string]lsmBlob)
	off := 0
	readU32 := func() (uint32, bool) {
		if off+4 > len(raw) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(raw[off : off+4])
		off += 4
		return v, true
	}
	readStr := func() (string, bool) {
		l, ok := readU32()
		if !ok || off+int(l) > len(raw) {
			return "", false
		}
		s := string(raw[off : off+int(l)])
		off += int(l)
		return s, true
	}
	count, ok := readU32()
	if !ok {
		return fmt.Errorf("tier: corrupt lsm directory record")
	}
	for i := uint32(0); i < count; i++ {
		name, ok1 := readStr()
		key, ok2 := readStr()
		size, ok3 := readU32()
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("tier: corrupt lsm directory entry %d", i)
		}
		dir[name] = lsmBlob{key: key, size: int(size)}
	}
	t.dir = dir
	// Resume versioning past every published key so fresh Puts never
	// collide with a restored blob's version.
	for _, b := range dir {
		if i := lastAt(b.key); i >= 0 {
			var v uint64
			if _, err := fmt.Sscanf(b.key[i+1:], "%d", &v); err == nil && v > t.ver {
				t.ver = v
			}
		}
	}
	return nil
}

// lastAt returns the index of the last '@' in s, or -1.
func lastAt(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '@' {
			return i
		}
	}
	return -1
}

// Stats implements Tier.
func (t *LSM) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Blobs = len(t.dir)
	for _, b := range t.dir {
		s.Bytes += uint64(b.size)
	}
	return s
}

// Crash implements Tier.
func (t *LSM) Crash() {
	t.dev.Crash()
}

// Recover implements Tier: the old engine is shut down against the
// still-crashed device (so nothing volatile leaks back), the device is
// recovered to its synced prefix, and a fresh engine replays the WAL.
func (t *LSM) Recover() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dev.Crashed() {
		t.db.Close()
		t.dev.Recover()
		db, err := lsm.Open(t.cfg, t.dev)
		if err != nil {
			return err
		}
		t.db = db
	}
	t.dir = make(map[string]lsmBlob)
	t.cleanup = nil
	t.dirty = false
	return t.loadDir()
}
