package tier

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"flexlog/internal/lsm"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
)

// backends builds one instance of every Tier implementation, paired with
// a crash+reopen function that simulates a process restart over the same
// (surviving) media.
func backends(t *testing.T) map[string]struct {
	tier   Tier
	reopen func() Tier
} {
	t.Helper()
	out := make(map[string]struct {
		tier   Tier
		reopen func() Tier
	})

	sdev := ssd.New(ssd.Zero())
	out["ssd"] = struct {
		tier   Tier
		reopen func() Tier
	}{NewSSD(sdev), func() Tier { return NewSSD(sdev) }}

	pool, err := pmem.New(1<<20, pmem.Zero())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPM(pool)
	if err != nil {
		t.Fatal(err)
	}
	out["pm"] = struct {
		tier   Tier
		reopen func() Tier
	}{pt, func() Tier {
		nt, err := NewPM(pool)
		if err != nil {
			t.Fatal(err)
		}
		return nt
	}}

	ldev := ssd.New(ssd.Zero())
	lcfg := lsm.Config{MemTableBytes: 4 << 10, CompactionTrigger: 2, SyncWAL: true}
	lt, err := NewLSM(lcfg, ldev)
	if err != nil {
		t.Fatal(err)
	}
	out["lsm"] = struct {
		tier   Tier
		reopen func() Tier
	}{lt, func() Tier {
		nt, err := NewLSM(lcfg, ldev)
		if err != nil {
			t.Fatal(err)
		}
		return nt
	}}
	return out
}

func TestTierPutGetDeleteRoundTrip(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			tr := b.tier
			if tr.Kind() != kind {
				t.Fatalf("Kind() = %q, want %q", tr.Kind(), kind)
			}
			data := []byte("the quick brown fox jumps over the lazy dog")
			if err := tr.Put("blob-a", data); err != nil {
				t.Fatal(err)
			}
			if err := tr.Sync(); err != nil {
				t.Fatal(err)
			}
			sz, err := tr.Size("blob-a")
			if err != nil || sz != int64(len(data)) {
				t.Fatalf("Size = %d, %v", sz, err)
			}
			// Full and partial reads.
			buf := make([]byte, len(data))
			if err := tr.Get("blob-a", 0, buf); err != nil || !bytes.Equal(buf, data) {
				t.Fatalf("Get full = %q, %v", buf, err)
			}
			part := make([]byte, 5)
			if err := tr.Get("blob-a", 4, part); err != nil || !bytes.Equal(part, data[4:9]) {
				t.Fatalf("Get partial = %q, %v", part, err)
			}
			// Out-of-range reads fail rather than truncate.
			if err := tr.Get("blob-a", int64(len(data))-2, make([]byte, 5)); err == nil {
				t.Fatal("out-of-range Get succeeded")
			}
			// Overwrite replaces wholesale.
			if err := tr.Put("blob-a", []byte("short")); err != nil {
				t.Fatal(err)
			}
			if err := tr.Sync(); err != nil {
				t.Fatal(err)
			}
			if sz, _ := tr.Size("blob-a"); sz != 5 {
				t.Fatalf("overwritten size = %d", sz)
			}
			// Delete, idempotently.
			if err := tr.Delete("blob-a"); err != nil {
				t.Fatal(err)
			}
			if err := tr.Delete("blob-a"); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Size("blob-a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Size after delete: %v", err)
			}
			if err := tr.Get("blob-a", 0, make([]byte, 1)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after delete: %v", err)
			}
		})
	}
}

func TestTierListAndStats(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			tr := b.tier
			for i := 0; i < 5; i++ {
				if err := tr.Put(fmt.Sprintf("n-%d", i), bytes.Repeat([]byte{byte(i)}, 10+i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Sync(); err != nil {
				t.Fatal(err)
			}
			names := tr.List()
			sort.Strings(names)
			if len(names) != 5 || names[0] != "n-0" || names[4] != "n-4" {
				t.Fatalf("List = %v", names)
			}
			s := tr.Stats()
			if s.Puts != 5 || s.Blobs != 5 {
				t.Fatalf("stats = %+v", s)
			}
			if s.Bytes != 10+11+12+13+14 {
				t.Fatalf("occupancy = %d", s.Bytes)
			}
		})
	}
}

// TestTierCrashSemantics: synced blobs survive a crash; unsynced puts and
// deletes do not happen.
func TestTierCrashSemantics(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			tr := b.tier
			if err := tr.Put("durable", []byte("synced bytes")); err != nil {
				t.Fatal(err)
			}
			if err := tr.Sync(); err != nil {
				t.Fatal(err)
			}
			// Unsynced work: a new blob that must not survive.
			if err := tr.Put("volatile", []byte("never synced")); err != nil {
				t.Fatal(err)
			}
			tr.Crash()
			if err := tr.Recover(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, len("synced bytes"))
			if err := tr.Get("durable", 0, buf); err != nil || string(buf) != "synced bytes" {
				t.Fatalf("durable blob after crash: %q, %v", buf, err)
			}
			// An unsynced put must not survive intact: either the blob is
			// gone (pm, lsm) or truncated to its synced prefix (ssd).
			if sz, err := tr.Size("volatile"); err == nil && sz == int64(len("never synced")) {
				t.Fatalf("unsynced blob survived the crash intact (%d bytes)", sz)
			} else if err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
		})
	}
}

// TestTierReopen: a fresh tier instance over the surviving media (the
// process-restart path) sees every synced blob.
func TestTierReopen(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			tr := b.tier
			if err := tr.Put("kept", []byte("persistent")); err != nil {
				t.Fatal(err)
			}
			if err := tr.Sync(); err != nil {
				t.Fatal(err)
			}
			if kind == "lsm" {
				// Release the engine's device before a second Open.
				tr.(*LSM).db.Close()
			}
			nt := b.reopen()
			buf := make([]byte, len("persistent"))
			if err := nt.Get("kept", 0, buf); err != nil || string(buf) != "persistent" {
				t.Fatalf("reopened Get = %q, %v", buf, err)
			}
		})
	}
}
