// Package tier defines the composable storage-tier abstraction of the
// FlexLog store (§5.2). A Tier is a named-blob device: the store's
// lifecycle machinery (segment spilling, checkpointing, trim-driven GC)
// talks to whatever sits below PM — a raw SSD, an LSM engine over the
// SSD, or a reserved PM region — through this one interface instead of
// hard-wiring *ssd.Device.
//
// The contract every backend provides:
//
//   - Put replaces the named blob wholesale. The bytes are volatile until
//     the next successful Sync (a crash before Sync may lose or truncate
//     them — exactly the simulated devices' semantics).
//   - Get reads len(buf) bytes at off. Reading a missing blob or past its
//     end is an error; blobs are immutable between Put calls, so readers
//     never see torn data.
//   - Delete drops the blob (idempotent: deleting a missing blob is ok).
//   - Sync is the durability barrier for every Put since the last Sync.
//   - Crash/Recover simulate a power failure: unsynced writes are lost,
//     synced blobs survive.
//
// Blob names are flat strings chosen by the caller (the store uses
// "seg-<id>" for spilled segments and "ckpt-<seq>" for checkpoints).
package tier

import "errors"

// ErrNotFound is returned by Get/Size for a blob that does not exist.
var ErrNotFound = errors.New("tier: blob not found")

// Tier is one level of the storage hierarchy, addressed as named blobs.
type Tier interface {
	// Kind labels the backend ("ssd", "lsm", "pm") for stats and metrics.
	Kind() string
	// Put replaces the named blob with data (volatile until Sync).
	Put(name string, data []byte) error
	// Get fills buf with the blob's bytes starting at off.
	Get(name string, off int64, buf []byte) error
	// Delete removes the blob. Deleting a missing blob is not an error.
	Delete(name string) error
	// Size returns the blob's length, or ErrNotFound.
	Size(name string) (int64, error)
	// List returns the names of all blobs (unordered).
	List() []string
	// Sync makes every previous Put durable.
	Sync() error
	// Stats returns the tier's activity counters.
	Stats() Stats
	// Crash simulates a power failure: unsynced writes are dropped.
	Crash()
	// Recover re-opens the tier after a Crash.
	Recover() error
}

// Stats counts tier activity. Counters are cumulative; Blobs and Bytes
// are the current occupancy.
type Stats struct {
	Blobs    int    // blobs currently stored
	Bytes    uint64 // payload bytes currently stored
	Puts     uint64
	Gets     uint64
	Deletes  uint64
	Syncs    uint64
	BytesIn  uint64 // payload bytes written by Put
	BytesOut uint64 // payload bytes returned by Get
}
