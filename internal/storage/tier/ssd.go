package tier

import (
	"errors"
	"fmt"
	"sync"

	"flexlog/internal/ssd"
)

// SSD adapts an *ssd.Device to the Tier interface: one blob per device
// file. Put replaces the file wholesale (Create truncates); Sync syncs
// only the files dirtied since the last Sync, so the durability barrier
// stays proportional to what was written, not to the blob population.
type SSD struct {
	dev *ssd.Device

	mu    sync.Mutex
	dirty map[string]bool
	stats Stats
}

// NewSSD wraps a device as a tier.
func NewSSD(dev *ssd.Device) *SSD {
	return &SSD{dev: dev, dirty: make(map[string]bool)}
}

// Device exposes the underlying device (for snapshotting via ssd.SaveTo
// and for publishing the device-level counters next to the tier's).
func (t *SSD) Device() *ssd.Device { return t.dev }

// Kind implements Tier.
func (t *SSD) Kind() string { return "ssd" }

// Put implements Tier: the named file is truncated and rewritten.
func (t *SSD) Put(name string, data []byte) error {
	if err := t.dev.Create(name); err != nil {
		return err
	}
	if _, err := t.dev.Append(name, data); err != nil {
		return err
	}
	t.mu.Lock()
	t.dirty[name] = true
	t.stats.Puts++
	t.stats.BytesIn += uint64(len(data))
	t.mu.Unlock()
	return nil
}

// Get implements Tier.
func (t *SSD) Get(name string, off int64, buf []byte) error {
	if err := t.dev.ReadAt(name, off, buf); err != nil {
		if errors.Is(err, ssd.ErrNotFound) {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return err
	}
	t.mu.Lock()
	t.stats.Gets++
	t.stats.BytesOut += uint64(len(buf))
	t.mu.Unlock()
	return nil
}

// Delete implements Tier.
func (t *SSD) Delete(name string) error {
	if err := t.dev.Delete(name); err != nil {
		return err
	}
	t.mu.Lock()
	delete(t.dirty, name)
	t.stats.Deletes++
	t.mu.Unlock()
	return nil
}

// Size implements Tier.
func (t *SSD) Size(name string) (int64, error) {
	sz, err := t.dev.Size(name)
	if errors.Is(err, ssd.ErrNotFound) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return sz, err
}

// List implements Tier.
func (t *SSD) List() []string { return t.dev.List() }

// Sync implements Tier: every file dirtied since the last Sync is synced.
func (t *SSD) Sync() error {
	t.mu.Lock()
	names := make([]string, 0, len(t.dirty))
	for name := range t.dirty {
		names = append(names, name)
	}
	t.mu.Unlock()
	for _, name := range names {
		if err := t.dev.Sync(name); err != nil {
			return err
		}
		t.mu.Lock()
		delete(t.dirty, name)
		t.mu.Unlock()
	}
	t.mu.Lock()
	t.stats.Syncs++
	t.mu.Unlock()
	return nil
}

// Stats implements Tier. Occupancy is computed from the device listing so
// it reflects crashes (unsynced blobs vanish) without bookkeeping drift.
func (t *SSD) Stats() Stats {
	t.mu.Lock()
	s := t.stats
	t.mu.Unlock()
	for _, name := range t.dev.List() {
		if sz, err := t.dev.Size(name); err == nil {
			s.Blobs++
			s.Bytes += uint64(sz)
		}
	}
	return s
}

// Crash implements Tier.
func (t *SSD) Crash() {
	t.dev.Crash()
	t.mu.Lock()
	t.dirty = make(map[string]bool)
	t.mu.Unlock()
}

// Recover implements Tier.
func (t *SSD) Recover() error {
	t.dev.Recover()
	return nil
}
