package tier

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"flexlog/internal/pmem"
)

// PM is a blob directory over a dedicated persistent-memory pool — the
// backend for deployments that reserve a PM region as the cold tier
// (cheaper than SSD reads, smaller than the hot log). Records are laid
// out with a bump allocator and never compacted: the pool is sized for
// the working set, and a Put of an existing name supersedes the old
// record by address order rather than reusing its space. That keeps the
// crash story trivial — every record is written once, behind a
// header-first commit protocol:
//
//	[u32 magic][u32 state][u32 nameLen][u32 dataLen][u32 crc][u32 _][name][data]
//
// A Put appends the record with state=pending; Sync flips pending records
// to live (the durability barrier). Delete appends a tombstone record.
// Recovery walks the records in address order, stopping at the first
// invalid one (only the newest record can be torn: Puts are serialized),
// and keeps the last live record or tombstone per name.
type PM struct {
	pool *pmem.Pool

	mu      sync.Mutex
	dir     map[string]pmBlob
	pending []pmPending
	stats   Stats
}

type pmBlob struct {
	dataOff uint64
	size    int
}

type pmPending struct {
	name    string
	stateAt uint64 // pool offset of the record's state field
	blob    pmBlob
	del     bool
}

const (
	pmMagic      = 0x544C4F42 // "BLOT"
	pmHeaderSize = 24

	pmStatePending uint32 = 1
	pmStateLive    uint32 = 2
	pmTombPending  uint32 = 3
	pmTombLive     uint32 = 4
)

// NewPM wraps a pool as a blob tier. The pool must be dedicated to this
// tier (the directory walk assumes every allocation is a blob record).
// Existing records — e.g. after pmem.LoadFrom — are picked up by Recover.
func NewPM(pool *pmem.Pool) (*PM, error) {
	t := &PM{pool: pool, dir: make(map[string]pmBlob)}
	if err := t.Recover(); err != nil {
		return nil, err
	}
	return t, nil
}

// Kind implements Tier.
func (t *PM) Kind() string { return "pm" }

// Put implements Tier: the blob is visible immediately but its record
// stays pending (invisible to recovery) until Sync flips its state.
func (t *PM) Put(name string, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	off, err := t.appendRecord(name, data, pmStatePending)
	if err != nil {
		return err
	}
	blob := pmBlob{dataOff: off + pmHeaderSize + uint64(len(name)), size: len(data)}
	t.dir[name] = blob
	t.pending = append(t.pending, pmPending{name: name, stateAt: off + 4, blob: blob})
	t.stats.Puts++
	t.stats.BytesIn += uint64(len(data))
	return nil
}

// Delete implements Tier: the blob leaves the live view now; a tombstone
// record makes the deletion durable at the next Sync.
func (t *PM) Delete(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, live := t.dir[name]
	// Cancel any pending put of the name (its record stays pending forever
	// and is skipped by recovery).
	kept := t.pending[:0]
	pendingPut := false
	for _, p := range t.pending {
		if p.name == name && !p.del {
			pendingPut = true
			continue
		}
		kept = append(kept, p)
	}
	t.pending = kept
	if !live && !pendingPut {
		return nil
	}
	delete(t.dir, name)
	off, err := t.appendRecord(name, nil, pmTombPending)
	if err != nil {
		return err
	}
	t.pending = append(t.pending, pmPending{name: name, stateAt: off + 4, del: true})
	t.stats.Deletes++
	return nil
}

// appendRecord bump-allocates and writes one record. Caller holds t.mu.
func (t *PM) appendRecord(name string, data []byte, state uint32) (uint64, error) {
	rec := make([]byte, pmHeaderSize+len(name)+len(data))
	binary.LittleEndian.PutUint32(rec[0:4], pmMagic)
	binary.LittleEndian.PutUint32(rec[4:8], state)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(name)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[16:20], crc32.ChecksumIEEE(data))
	copy(rec[pmHeaderSize:], name)
	copy(rec[pmHeaderSize+len(name):], data)
	off, err := t.pool.Alloc(len(rec))
	if err != nil {
		return 0, err
	}
	if err := t.pool.Write(off, rec); err != nil {
		return 0, err
	}
	return off, nil
}

// Get implements Tier.
func (t *PM) Get(name string, off int64, buf []byte) error {
	t.mu.Lock()
	b, ok := t.dir[name]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 || off+int64(len(buf)) > int64(b.size) {
		return fmt.Errorf("tier: read [%d,%d) beyond blob %s of %d bytes", off, off+int64(len(buf)), name, b.size)
	}
	if err := t.pool.Read(b.dataOff+uint64(off), buf); err != nil {
		return err
	}
	t.mu.Lock()
	t.stats.Gets++
	t.stats.BytesOut += uint64(len(buf))
	t.mu.Unlock()
	return nil
}

// Size implements Tier.
func (t *PM) Size(name string) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.dir[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(b.size), nil
}

// List implements Tier.
func (t *PM) List() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.dir))
	for n := range t.dir {
		names = append(names, n)
	}
	return names
}

// Sync implements Tier: every pending record is flipped live (puts) or
// tombstone-live (deletes), in append order — the live view was already
// updated by Put/Delete; this is only the durability barrier.
func (t *PM) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var flip [4]byte
	for _, p := range t.pending {
		state := pmStateLive
		if p.del {
			state = pmTombLive
		}
		binary.LittleEndian.PutUint32(flip[:], state)
		if err := t.pool.Write(p.stateAt, flip[:]); err != nil {
			return err
		}
	}
	t.pending = t.pending[:0]
	t.stats.Syncs++
	return nil
}

// Stats implements Tier.
func (t *PM) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Blobs = len(t.dir)
	for _, b := range t.dir {
		s.Bytes += uint64(b.size)
	}
	return s
}

// Crash implements Tier.
func (t *PM) Crash() {
	t.pool.Crash()
	t.mu.Lock()
	t.pending = nil
	t.mu.Unlock()
}

// Recover implements Tier: the directory is rebuilt by walking the
// records in address order up to the pool's allocation watermark.
func (t *PM) Recover() error {
	t.pool.Recover()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dir = make(map[string]pmBlob)
	t.pending = nil
	off := pmem.DataStart
	end := t.pool.Allocated()
	var hdr [pmHeaderSize]byte
	for off+pmHeaderSize <= end {
		if err := t.pool.Read(off, hdr[:]); err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != pmMagic {
			break // torn tail record (or virgin space): stop the walk
		}
		state := binary.LittleEndian.Uint32(hdr[4:8])
		nameLen := binary.LittleEndian.Uint32(hdr[8:12])
		dataLen := binary.LittleEndian.Uint32(hdr[12:16])
		crc := binary.LittleEndian.Uint32(hdr[16:20])
		recEnd := off + pmHeaderSize + uint64(nameLen) + uint64(dataLen)
		if nameLen == 0 || recEnd > end {
			break
		}
		nameBuf := make([]byte, nameLen)
		if err := t.pool.Read(off+pmHeaderSize, nameBuf); err != nil {
			return err
		}
		name := string(nameBuf)
		switch state {
		case pmStateLive:
			data := make([]byte, dataLen)
			if err := t.pool.Read(off+pmHeaderSize+uint64(nameLen), data); err != nil {
				return err
			}
			if crc32.ChecksumIEEE(data) != crc {
				break // torn payload: nothing after it can be trusted
			}
			t.dir[name] = pmBlob{dataOff: off + pmHeaderSize + uint64(nameLen), size: int(dataLen)}
		case pmTombLive:
			delete(t.dir, name)
		case pmStatePending, pmTombPending:
			// Lost: the crash hit before the Sync barrier.
		default:
			return fmt.Errorf("tier: pm record at %d has invalid state %d", off, state)
		}
		off = recEnd
	}
	return nil
}
