module flexlog

go 1.23
