# Tier-1 verification recipe. `make verify` is what CI (and the roadmap's
# acceptance gate) runs: build, full test suite, vet, and a race-detector
# pass over the concurrency-heavy packages (client batching layer and
# replica protocol).

GO ?= go

.PHONY: verify build test vet race bench bench-smoke

verify: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/replica/... ./internal/transport/... ./internal/storage/...

bench:
	$(GO) run ./cmd/flexlog-bench -quick all

# Fast profiling loop for the read path: one quick ablation run with CPU
# and heap profiles dropped next to the binary's working dir.
bench-smoke:
	$(GO) run ./cmd/flexlog-bench -quick -cpuprofile cpu.pprof -memprofile mem.pprof ablate-readpath
