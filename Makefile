# Tier-1 verification recipe. `make verify` is what CI (and the roadmap's
# acceptance gate) runs: build, full test suite, vet, and a race-detector
# pass over the concurrency-heavy packages (client batching layer and
# replica protocol).

GO ?= go

.PHONY: verify build test vet race bench

verify: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/replica/...

bench:
	$(GO) run ./cmd/flexlog-bench -quick all
