# Tier-1 verification recipe. `make verify` is what CI (and the roadmap's
# acceptance gate) runs: build, full test suite, vet, a race-detector
# pass over the concurrency-heavy packages (client batching layer and
# replica protocol), and a short seeded chaos soak under -race checked by
# the linearizability history oracle.

GO ?= go

.PHONY: verify build test vet race bench bench-smoke bench-write-smoke chaos-smoke chaos-soak docs-check obs-smoke tiering-smoke codec-smoke qos-smoke seq-smoke reconfig-smoke

verify: build test vet race chaos-smoke bench-write-smoke obs-smoke tiering-smoke codec-smoke qos-smoke seq-smoke reconfig-smoke docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/replica/... ./internal/transport/... ./internal/storage/... ./internal/ctrlplane/...

# Short seeded chaos soak (drop/dup/reorder/jitter + replica crashes +
# leader kills) under -race; a failure prints the seed and the nemesis
# schedule to replay it (FLEXLOG_CHAOS_SEED=<seed>).
chaos-smoke:
	$(GO) test -race -short -count=1 -run 'TestChaosSoakShort|TestScheduleDeterminism' ./internal/chaos/

# Full ≥30s acceptance soak (see EXPERIMENTS.md "chaos soak").
chaos-soak:
	FLEXLOG_CHAOS_SOAK=1 $(GO) test -race -count=1 -timeout 300s -run 'TestChaosSoak$$' -v ./internal/chaos/

bench:
	$(GO) run ./cmd/flexlog-bench -quick all

# Fast profiling loop for the read path: one quick ablation run with CPU
# and heap profiles dropped next to the binary's working dir.
bench-smoke:
	$(GO) run ./cmd/flexlog-bench -quick -cpuprofile cpu.pprof -memprofile mem.pprof ablate-readpath

# Write-path smoke: the quick ablation must finish (well) inside 30s and
# report zero drops; part of `make verify` so the parallel write path
# can't silently rot. The block profile captures lane/lock contention.
bench-write-smoke:
	timeout 30 $(GO) run ./cmd/flexlog-bench -quick -blockprofile block.pprof ablate-writepath

# Tiered-storage lifecycle smoke: the checkpoint-bounded-recovery unit
# test (replay stays flat while the log grows under a PM budget) plus the
# quick ablate-tiering curve (eviction under budget, cold-tier reads,
# flat recovery vs the lifecycle-less baseline). See DESIGN.md §11.
tiering-smoke:
	$(GO) test -count=1 -run 'TestCheckpointBoundsRecoveryReplay|TestBackgroundEvictionUnderBudget' ./internal/storage/
	timeout 60 $(GO) test -count=1 -run 'TestTieringShape' ./internal/bench/

# Observability overhead smoke: the ablation runs the same append workload
# with the registry + tracing off and on, and fails if modeled throughput
# drops more than 5% (see internal/bench/obs.go and DESIGN.md §9).
obs-smoke:
	timeout 60 $(GO) run ./cmd/flexlog-bench -quick ablate-obs

# Wire-codec smoke (DESIGN.md §12): the 0 allocs/op ceiling on the hot
# frame types, the golden-bytes pin of the wire format, and the quick
# TCP-deployment ablation (binary must hold >= 2x gob append throughput
# over real loopback sockets).
codec-smoke:
	$(GO) test -count=1 -run 'TestCodecZeroAllocHotPath|TestCodecGolden' ./internal/proto/
	timeout 120 $(GO) test -count=1 -run 'TestAblateCodecShape' ./internal/bench/

# Multi-tenant QoS smoke (DESIGN.md §13): the quick ablate-qos run must
# show noisy-neighbor isolation (victim keeps >= ~80% of solo throughput
# while the aggressor gets admission-throttled), zero sheds at nominal
# load, and a hedged-read P99 win under a jitter-degraded replica; plus
# the lane backpressure and retry-after unit tests under -race.
qos-smoke:
	$(GO) test -race -count=1 -run 'TestLaneBackpressure|TestLaneTenantFIFO|TestBackoffRetryAfter' ./internal/transport/ ./internal/core/
	timeout 120 $(GO) test -count=1 -run 'TestAblateQoSShape' ./internal/bench/

# Lock-free sequencer smoke (DESIGN.md §14): the -race ordering stress
# tests (concurrent colors with duplicate retries; epoch bumps forced into
# a request flood) plus the quick ablate-seq curve (order lanes must hold
# >= 3x modeled ordering throughput at 64 concurrent colors with the
# single-driver round-trip inside 10%).
seq-smoke:
	$(GO) test -race -count=1 -run 'TestConcurrentOrderingStress|TestEpochBumpDuringFlood' ./internal/seq/
	timeout 120 $(GO) test -count=1 -run 'TestAblateSeqShape' ./internal/bench/

# Reconfiguration smoke (DESIGN.md §15): the -race stress test (appends
# flooding two colors through a concurrent shard split + replica drain +
# replica add, gated by the histcheck oracle) plus the quick
# ablate-reconfig curve (bounded dip during the window, post-split
# throughput >= 95% of pre-split).
reconfig-smoke:
	$(GO) test -race -count=1 -run 'TestReconfigUnderLoad' ./internal/ctrlplane/
	timeout 60 $(GO) test -count=1 -run 'TestAblateReconfigShape' ./internal/bench/

# Godoc coverage gate: every exported symbol in internal/obs (and the
# control plane's operator-facing API) must carry a doc comment
# (OPERATIONS.md's coverage test guards the metric names; this guards the
# API docs). -flags verifies every flexlog-server / flexlog-cli flag is
# documented in README.md or OPERATIONS.md.
docs-check:
	$(GO) run ./cmd/docs-check internal/obs internal/ctrlplane
	$(GO) run ./cmd/docs-check -flags cmd/flexlog-server cmd/flexlog-cli
