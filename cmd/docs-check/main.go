// Command docs-check enforces two documentation gates:
//
//   - godoc coverage: every exported top-level declaration (and exported
//     method) in the given package directories must carry a doc comment,
//     and every package must have a package comment.
//   - flag coverage (-flags): every command-line flag a binary registers
//     (flag.String / sub.Bool / ... — any *"name", ...* flag-package call)
//     must be mentioned as -name in README.md or OPERATIONS.md, so the
//     operator surface can't drift ahead of its documentation.
//
// Usage:
//
//	docs-check [dir ...]           # godoc gate; default: internal/obs
//	docs-check -flags [cmddir ...] # flag gate; default: cmd/flexlog-server cmd/flexlog-cli
//
// It exits non-zero listing each miss, so `make docs-check` fails the
// build when documentation drifts. It parses source directly (go/parser),
// so it needs no build context and runs in a second.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flagMode := flag.Bool("flags", false, "check that every registered command-line flag is documented in README.md or OPERATIONS.md")
	flag.Parse()
	dirs := flag.Args()

	var misses []string
	if *flagMode {
		if len(dirs) == 0 {
			dirs = []string{"cmd/flexlog-server", "cmd/flexlog-cli"}
		}
		docs, err := loadDocs("README.md", "OPERATIONS.md")
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-check: %v\n", err)
			os.Exit(1)
		}
		for _, dir := range dirs {
			m, err := checkFlags(dir, docs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "docs-check: %s: %v\n", dir, err)
				os.Exit(1)
			}
			misses = append(misses, m...)
		}
		if len(misses) > 0 {
			fmt.Fprintf(os.Stderr, "docs-check: %d undocumented flags (add -name to README.md or OPERATIONS.md):\n", len(misses))
			for _, m := range misses {
				fmt.Fprintf(os.Stderr, "  %s\n", m)
			}
			os.Exit(1)
		}
		fmt.Printf("docs-check: flags in %d command(s) all documented\n", len(dirs))
		return
	}

	if len(dirs) == 0 {
		dirs = []string{"internal/obs"}
	}
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-check: %s: %v\n", dir, err)
			os.Exit(1)
		}
		misses = append(misses, m...)
	}
	if len(misses) > 0 {
		fmt.Fprintf(os.Stderr, "docs-check: %d undocumented exported symbols:\n", len(misses))
		for _, m := range misses {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("docs-check: %d package(s) clean\n", len(dirs))
}

// loadDocs concatenates the named markdown files (a missing file is an
// error — the gate must not silently pass on a renamed doc).
func loadDocs(files ...string) (string, error) {
	var sb strings.Builder
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// checkFlags parses every non-test .go file in a command directory,
// collects each flag-registration call's flag name, and returns one line
// per flag whose "-name" never appears in the docs.
func checkFlags(dir, docs string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		for name, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fname, ok := flagName(call)
				if !ok {
					return true
				}
				if !strings.Contains(docs, "-"+fname) {
					out = append(out, fmt.Sprintf("%s:%d: flag -%s", filepath.Base(name), fset.Position(call.Pos()).Line, fname))
				}
				return true
			})
		}
	}
	return out, nil
}

// flagRegisters are the flag-package methods that declare a flag with the
// name as their first string-literal argument. Both the package-level
// flag.X and FlagSet method forms (sub.X) match, since the selector name
// is the same.
var flagRegisters = map[string]bool{
	"Bool": true, "Int": true, "Int64": true, "Uint": true, "Uint64": true,
	"String": true, "Float64": true, "Duration": true,
	"BoolVar": true, "IntVar": true, "Int64Var": true, "UintVar": true, "Uint64Var": true,
	"StringVar": true, "Float64Var": true, "DurationVar": true,
}

// flagName extracts the declared flag name from a flag-registration call,
// reporting ok=false for any other call expression.
func flagName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !flagRegisters[sel.Sel.Name] {
		return "", false
	}
	// The name is the first argument for flag.X / sub.X, the second for
	// the *Var forms (whose first argument is the pointer).
	idx := 0
	if strings.HasSuffix(sel.Sel.Name, "Var") {
		idx = 1
	}
	if len(call.Args) <= idx {
		return "", false
	}
	lit, ok := call.Args[idx].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || len(lit.Value) < 2 {
		return "", false
	}
	return lit.Value[1 : len(lit.Value)-1], true
}

// checkDir parses every non-test .go file in dir and returns one line per
// undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			out = append(out, checkFile(fset, filepath.Base(name), f)...)
		}
	}
	return out, nil
}

// checkFile reports undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, file string, f *ast.File) []string {
	var out []string
	miss := func(pos token.Pos, what string) {
		out = append(out, fmt.Sprintf("%s:%d: %s", file, fset.Position(pos).Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "function"
			name := d.Name.Name
			if d.Recv != nil {
				// Only flag methods on exported receivers; unexported types
				// are internal regardless of their method casing.
				recv := receiverName(d.Recv)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				kind = "method"
				name = recv + "." + name
			}
			miss(d.Pos(), fmt.Sprintf("%s %s has no doc comment", kind, name))
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						miss(s.Pos(), fmt.Sprintf("type %s has no doc comment", s.Name.Name))
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers the group.
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							miss(n.Pos(), fmt.Sprintf("%s %s has no doc comment", strings.ToLower(d.Tok.String()), n.Name))
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's type name ("" when unnamed).
func receiverName(fl *ast.FieldList) string {
	if fl == nil || len(fl.List) == 0 {
		return ""
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
