// Command docs-check enforces godoc coverage: every exported top-level
// declaration (and exported method) in the given package directories must
// carry a doc comment, and every package must have a package comment.
//
// Usage:
//
//	docs-check [dir ...]    # default: internal/obs
//
// It exits non-zero listing each undocumented symbol, so `make docs-check`
// fails the build when documentation drifts. It parses source directly
// (go/parser), so it needs no build context and runs in a second.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal/obs"}
	}
	var misses []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-check: %s: %v\n", dir, err)
			os.Exit(1)
		}
		misses = append(misses, m...)
	}
	if len(misses) > 0 {
		fmt.Fprintf(os.Stderr, "docs-check: %d undocumented exported symbols:\n", len(misses))
		for _, m := range misses {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("docs-check: %d package(s) clean\n", len(dirs))
}

// checkDir parses every non-test .go file in dir and returns one line per
// undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			out = append(out, checkFile(fset, filepath.Base(name), f)...)
		}
	}
	return out, nil
}

// checkFile reports undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, file string, f *ast.File) []string {
	var out []string
	miss := func(pos token.Pos, what string) {
		out = append(out, fmt.Sprintf("%s:%d: %s", file, fset.Position(pos).Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "function"
			name := d.Name.Name
			if d.Recv != nil {
				// Only flag methods on exported receivers; unexported types
				// are internal regardless of their method casing.
				recv := receiverName(d.Recv)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				kind = "method"
				name = recv + "." + name
			}
			miss(d.Pos(), fmt.Sprintf("%s %s has no doc comment", kind, name))
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						miss(s.Pos(), fmt.Sprintf("type %s has no doc comment", s.Name.Name))
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers the group.
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							miss(n.Pos(), fmt.Sprintf("%s %s has no doc comment", strings.ToLower(d.Tok.String()), n.Name))
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's type name ("" when unnamed).
func receiverName(fl *ast.FieldList) string {
	if fl == nil || len(fl.List) == 0 {
		return ""
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
