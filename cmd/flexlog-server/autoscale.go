package main

import (
	"context"
	"errors"
	"log"
	"net/http"
	"time"

	"flexlog/internal/ctrlplane"
	"flexlog/internal/obs"
	"flexlog/internal/replica"
	"flexlog/internal/topology"
	"flexlog/internal/types"
)

// manifestCluster adapts one server process to the ctrlplane.Cluster
// interface so the controller's /debug/topology page and the advisory
// autoscaler can run against a static TCP deployment. A single process
// cannot mutate cluster membership — new replicas are separate OS
// processes an operator (or an external orchestrator) must start — so
// every mutating method returns errStaticDeployment. The autoscaler runs
// in Advisory mode only and never calls them; a mis-wired caller gets a
// typed error instead of a silent no-op.
type manifestCluster struct {
	topo  *topology.Topology
	id    types.NodeID
	local *replica.Replica // nil on sequencer nodes
}

// errStaticDeployment is returned by every topology-mutating method: a
// TCP deployment reconfigures via operator-driven flexlog-cli reconfig
// (see the OPERATIONS.md runbook), not in-process spawning.
var errStaticDeployment = errors.New("static TCP deployment: use flexlog-cli reconfig (see OPERATIONS.md)")

// Topology returns the manifest-derived layout (updated by push-topo).
func (m *manifestCluster) Topology() *topology.Topology { return m.topo }

// SpawnReplica cannot start a new OS process; see errStaticDeployment.
func (m *manifestCluster) SpawnReplica(types.ShardID) (types.NodeID, error) {
	return 0, errStaticDeployment
}

// RemoveReplicaNode cannot stop another process; see errStaticDeployment.
func (m *manifestCluster) RemoveReplicaNode(types.NodeID) error { return errStaticDeployment }

// AddShard requires spawning replica processes; see errStaticDeployment.
func (m *manifestCluster) AddShard(types.ColorID) (types.ShardID, error) {
	return 0, errStaticDeployment
}

// AddRegion requires spawning processes; see errStaticDeployment.
func (m *manifestCluster) AddRegion(color, parent types.ColorID) error { return errStaticDeployment }

// Replica returns the process-local replica for this node's own id and
// nil for every other (remote) node — /debug/topology renders those
// without mode detail.
func (m *manifestCluster) Replica(id types.NodeID) *replica.Replica {
	if id == m.id {
		return m.local
	}
	return nil
}

// startCtrlPlane wires the operator surface of a server process: mounts
// /debug/topology on the debug mux and, when autoscale is set, runs the
// autoscaler in Advisory mode — it polls this node's registry against the
// default policy thresholds and LOGS the reconfiguration it would issue
// (split-shard / add-replica, with the reason) instead of executing it.
// The operator acts on the advice with flexlog-cli reconfig.
func startCtrlPlane(topo *topology.Topology, id types.NodeID, local *replica.Replica, reg *obs.Registry, autoscale bool) map[string]http.Handler {
	ctrl := ctrlplane.New(&manifestCluster{topo: topo, id: id, local: local}, ctrlplane.Config{Obs: reg})
	if autoscale {
		as := ctrlplane.NewAutoscaler(ctrl, reg, ctrlplane.Policy{Advisory: true}, time.Second)
		as.Start(context.Background())
		go logAdvice(as)
		log.Printf("advisory autoscaler on (polling local metrics every 1s; advice is logged, not executed)")
	}
	return map[string]http.Handler{"/debug/topology": ctrlplane.TopologyHandler(ctrl)}
}

// logAdvice tails the autoscaler's advice ring and logs each new entry.
func logAdvice(as *ctrlplane.Autoscaler) {
	seen := 0
	for range time.Tick(time.Second) {
		advice := as.Advice()
		for ; seen < len(advice); seen++ {
			a := advice[seen]
			log.Printf("autoscale advice: %s (shard=%d leaf=%d): %s — run the matching flexlog-cli reconfig / see OPERATIONS.md",
				a.Kind, a.Shard, a.Leaf, a.Reason)
		}
	}
}
