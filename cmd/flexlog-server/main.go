// Command flexlog-server runs one FlexLog node — a storage replica or a
// sequencer — over TCP, as declared by a cluster manifest (see package
// deploy for the format, and -example to print a starter manifest).
//
// Usage:
//
//	flexlog-server -example > cluster.json
//	flexlog-server -config cluster.json -id 1      # replica (per manifest)
//	flexlog-server -config cluster.json -id 900    # sequencer leader
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"flexlog/internal/deploy"
	"flexlog/internal/obs"
	"flexlog/internal/pmem"
	"flexlog/internal/qos"
	"flexlog/internal/replica"
	"flexlog/internal/seq"
	"flexlog/internal/ssd"
	"flexlog/internal/storage"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

func main() {
	config := flag.String("config", "", "cluster manifest (JSON)")
	id := flag.Uint("id", 0, "this node's id in the manifest")
	example := flag.Bool("example", false, "print an example manifest and exit")
	segMB := flag.Int("pm-segment-mb", 4, "PM segment size (MiB)")
	segments := flag.Int("pm-segments", 16, "PM segment slots")
	cacheMB := flag.Int("cache-mb", 16, "DRAM cache size (MiB)")
	pmBudgetMB := flag.Int("pm-budget-mb", 0, "PM budget for log segments (MiB); past it the lifecycle evicts cold segments to SSD (0 = no background eviction)")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a recovery checkpoint every N flushed entries (0 = no checkpoints)")
	dataDir := flag.String("data-dir", "", "directory for device snapshots; empty = volatile (replicas only)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/traces, /debug/lanes, /debug/pprof on this address (e.g. :8080); empty disables observability")
	codecName := flag.String("codec", "binary", "outbound wire codec: binary (length-prefixed custom framing) or gob (legacy); inbound frames are auto-detected per connection either way")
	seqWorkers := flag.Int("seq-workers", 4, "sequencer order-lane workers (per-color FIFO; 0 = serialized delivery loop)")
	autoscale := flag.Bool("autoscale", false, "run the advisory autoscaler: poll this node's metrics against the default policy thresholds and log the reconfiguration it would issue (requires -debug-addr); execute advice with flexlog-cli reconfig")
	flag.Parse()

	if *example {
		raw, err := json.MarshalIndent(deploy.Example(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(raw))
		return
	}
	if *config == "" || *id == 0 {
		fmt.Fprintln(os.Stderr, "usage: flexlog-server -config cluster.json -id N   (or -example)")
		os.Exit(2)
	}
	m, err := deploy.Load(*config)
	if err != nil {
		log.Fatal(err)
	}
	deploy.RegisterWire()
	topo, err := m.Topology()
	if err != nil {
		log.Fatal(err)
	}
	book := m.AddressBook()
	nodeID := types.NodeID(*id)
	role := m.RoleOf(nodeID)

	codec, err := transport.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}

	// One registry per process; the node's components publish into it and
	// the debug server scrapes it. Nil (observability off) when -debug-addr
	// is not given — instrumentation then no-ops on nil receivers.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterProcess(reg)
	}

	attach := func(h transport.Handler) (transport.Endpoint, error) {
		ep, err := transport.ListenTCP(nodeID, book, h, transport.WithTCPCodec(codec))
		if err != nil {
			return nil, err
		}
		ep.PublishObs(reg)
		return ep, nil
	}

	switch role.Kind {
	case "replica":
		cfg := replica.DefaultConfig()
		cfg.ID = nodeID
		cfg.Shard = role.Shard
		cfg.Topo = topo
		cfg.Obs = reg
		cfg.Store = storage.Config{
			SegmentSize: uint64(*segMB) << 20,
			NumSegments: *segments,
			CacheBytes:  *cacheMB << 20,
			PMModel:     storage.DefaultConfig().PMModel,
			SSDModel:    storage.DefaultConfig().SSDModel,
			GroupCommit: true,

			// Storage lifecycle (DESIGN.md §11): PM→SSD eviction under a
			// budget, and checkpoints that bound recovery replay.
			PMBudget:        uint64(*pmBudgetMB) << 20,
			CheckpointEvery: *ckptEvery,
		}
		// Deployed replicas run the full parallel write path: the keyed
		// write lane comes with DefaultConfig; group commit and
		// order-request coalescing are opted into here.
		cfg.OrderCoalesce = true
		cfg.ReadHoldTimeout = time.Millisecond
		cfg.HeartbeatInterval = 100 * time.Millisecond
		cfg.RetryTimeout = time.Second
		cfg.Tenants = m.TenantConfigs()

		// Device snapshots make the simulated PM/SSD survive process
		// restarts (standing in for reopening a PMDK pool file).
		if *dataDir != "" {
			pmPath := filepath.Join(*dataDir, fmt.Sprintf("node-%d.pmem", nodeID))
			ssdPath := filepath.Join(*dataDir, fmt.Sprintf("node-%d.ssd", nodeID))
			cfg.StoreFactory = func(scfg storage.Config) (*storage.Store, error) {
				pool, errPM := pmem.LoadFrom(pmPath, scfg.PMModel)
				if errPM != nil {
					if !os.IsNotExist(errPM) {
						return nil, errPM
					}
					return storage.Open(scfg) // first boot
				}
				dev, errSSD := ssd.LoadFrom(ssdPath, scfg.SSDModel)
				if errSSD != nil {
					if !os.IsNotExist(errSSD) {
						return nil, errSSD
					}
					dev = ssd.New(scfg.SSDModel)
				}
				log.Printf("restored device snapshots from %s", *dataDir)
				return storage.Open(scfg,
					storage.WithPMTier(pool),
					storage.WithSSDTier(dev),
					storage.WithAttach())
			}
			_ = os.MkdirAll(*dataDir, 0o755)
		}

		r, err := replica.NewWithEndpoint(cfg, attach)
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil {
			startDebugServer(*debugAddr, obs.MuxConfig{
				Registry: reg,
				Tracers:  r.Tracers(),
				Lanes:    r.LaneSnapshots,
				Extra:    startCtrlPlane(topo, nodeID, r, reg, *autoscale),
			})
		} else if *autoscale {
			log.Fatal("-autoscale requires -debug-addr (the autoscaler polls this node's metrics registry)")
		}
		leaf := types.MasterColor
		if sh, err := topo.Shard(role.Shard); err == nil {
			leaf = sh.Leaf
		}
		log.Printf("replica %v serving shard %v (leaf %v)", nodeID, role.Shard, leaf)
		waitForSignal()
		r.Stop()
		if *dataDir != "" {
			pmPath := filepath.Join(*dataDir, fmt.Sprintf("node-%d.pmem", nodeID))
			ssdPath := filepath.Join(*dataDir, fmt.Sprintf("node-%d.ssd", nodeID))
			if err := r.Store().SaveDevices(pmPath, ssdPath); err != nil {
				log.Printf("saving device snapshots: %v", err)
			} else {
				log.Printf("device snapshots saved to %s", *dataDir)
			}
		}
	case "sequencer":
		si, err := topo.Sequencer(role.Region)
		if err != nil {
			log.Fatal(err)
		}
		cfg := seq.DefaultConfig()
		cfg.ID = nodeID
		cfg.Region = role.Region
		cfg.Topo = topo
		cfg.BatchInterval = time.Microsecond
		cfg.HeartbeatInterval = 100 * time.Millisecond
		cfg.FailureTimeout = time.Second
		cfg.RetryTimeout = 2 * time.Second
		cfg.StartAsLeader = si.Leader == nodeID
		cfg.TenantOf = qos.ColorMap(m.TenantConfigs())
		cfg.OrderWorkers = *seqWorkers
		// Durable epochs: a cold restart must resume ABOVE every epoch the
		// previous incarnation could have used, or SNs would repeat.
		var epochPath string
		if *dataDir != "" {
			_ = os.MkdirAll(*dataDir, 0o755)
			epochPath = filepath.Join(*dataDir, fmt.Sprintf("node-%d.epoch", nodeID))
			cfg.InitialEpoch = loadEpoch(epochPath) + 1
			if err := saveEpoch(epochPath, cfg.InitialEpoch); err != nil {
				log.Fatalf("persisting epoch: %v", err)
			}
		}
		s, err := seq.NewWithEndpoint(cfg, attach)
		if err != nil {
			log.Fatal(err)
		}
		s.PublishObs(reg)
		if reg != nil {
			startDebugServer(*debugAddr, obs.MuxConfig{
				Registry: reg,
				Extra:    startCtrlPlane(topo, nodeID, nil, reg, *autoscale),
			})
		} else if *autoscale {
			log.Fatal("-autoscale requires -debug-addr (the autoscaler polls this node's metrics registry)")
		}
		log.Printf("sequencer %v for region %v (leader=%v, epoch=%d)", nodeID, role.Region, cfg.StartAsLeader, s.Epoch())
		if epochPath != "" {
			// Track epoch advances (failovers) so the next cold start
			// resumes above them.
			go func() {
				for range time.Tick(time.Second) {
					saveEpoch(epochPath, s.Epoch())
				}
			}()
		}
		waitForSignal()
		if epochPath != "" {
			saveEpoch(epochPath, s.Epoch())
		}
		s.Stop()
	default:
		log.Fatalf("node %v has no role in the manifest", nodeID)
	}
}

// startDebugServer mounts the observability endpoints; failure to bind is
// fatal — an operator who asked for -debug-addr wants to know.
func startDebugServer(addr string, cfg obs.MuxConfig) {
	_, bound, err := obs.Serve(addr, cfg)
	if err != nil {
		log.Fatalf("debug server: %v", err)
	}
	log.Printf("debug server on http://%s (/metrics /debug/traces /debug/lanes /debug/pprof)", bound)
}

// loadEpoch reads the persisted epoch (0 when absent).
func loadEpoch(path string) types.Epoch {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var e uint32
	fmt.Sscanf(string(raw), "%d", &e)
	return types.Epoch(e)
}

// saveEpoch persists the epoch atomically.
func saveEpoch(path string, e types.Epoch) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, fmt.Appendf(nil, "%d\n", uint32(e)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Println("shutting down")
}
