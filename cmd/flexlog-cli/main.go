// Command flexlog-cli issues FlexLog API calls (Table 2) and control-plane
// operations (DESIGN.md §15) against a running TCP deployment.
//
// Usage:
//
//	flexlog-cli -config cluster.json -id 500 append -color 0 -data "hello"
//	flexlog-cli -config cluster.json -id 500 read   -color 0 -sn 4294967297
//	flexlog-cli -config cluster.json -id 500 subscribe -color 0
//	flexlog-cli -config cluster.json -id 500 trim   -color 0 -sn 4294967297
//
// Reconfiguration (see the OPERATIONS.md runbook for full walkthroughs):
//
//	flexlog-cli -config cluster.json -id 500 reconfig status -node 1
//	flexlog-cli -config cluster.json -id 500 reconfig add-replica -node 4 -donor 1
//	flexlog-cli -config cluster.json -id 500 reconfig drain -node 3
//	flexlog-cli -config cluster.json -id 500 reconfig push-topo -node 1 -version 9
//
// The id must be a node declared in the manifest that no server uses (a
// client slot).
package main

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/deploy"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

func main() {
	config := flag.String("config", "", "cluster manifest (JSON)")
	id := flag.Uint("id", 0, "client node id from the manifest")
	timeout := flag.Duration("timeout", 10*time.Second, "operation timeout")
	codecName := flag.String("codec", "binary", "outbound wire codec: binary or gob (inbound is auto-detected)")
	flag.Parse()

	args := flag.Args()
	if *config == "" || *id == 0 || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flexlog-cli -config cluster.json -id N <append|read|subscribe|trim> [flags]")
		os.Exit(2)
	}
	m, err := deploy.Load(*config)
	if err != nil {
		log.Fatal(err)
	}
	deploy.RegisterWire()
	codec, err := transport.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := m.Topology()
	if err != nil {
		log.Fatal(err)
	}
	book := m.AddressBook()
	nodeID := types.NodeID(*id)

	if args[0] == "reconfig" {
		runReconfig(m, topo, book, codec, nodeID, *timeout, args[1:])
		return
	}

	// Every CLI invocation is a fresh "function instance": its FID must be
	// distinct from every other instance that ever appended (Alg. 1 line 6
	// dedupes by token = FID<<32|counter), so derive it randomly rather
	// than from the reusable transport id.
	var fidBytes [4]byte
	if _, err := cryptorand.Read(fidBytes[:]); err != nil {
		log.Fatal(err)
	}
	fid := binary.LittleEndian.Uint32(fidBytes[:])

	client, err := core.NewClientWithEndpoint(core.ClientConfig{
		FID:     fid,
		ID:      nodeID,
		Topo:    topo,
		Timeout: *timeout,
	}, func(h transport.Handler) (transport.Endpoint, error) {
		return transport.ListenTCP(nodeID, book, h, transport.WithTCPCodec(codec))
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cmd, rest := args[0], args[1:]
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	color := sub.Uint("color", 0, "color id")
	sn := sub.Uint64("sn", 0, "sequence number")
	data := sub.String("data", "", "record payload (append)")
	from := sub.Uint64("from", 0, "exclusive lower SN bound (subscribe)")
	if err := sub.Parse(rest); err != nil {
		log.Fatal(err)
	}
	c := types.ColorID(*color)

	switch cmd {
	case "append":
		got, err := client.Append([][]byte{[]byte(*data)}, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended at sn=%d (%v)\n", uint64(got), got)
	case "read":
		got, err := client.Read(types.SN(*sn), c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", got)
	case "subscribe":
		recs, err := client.Subscribe(c, types.SN(*from))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			fmt.Printf("%d\t%q\n", uint64(r.SN), r.Data)
		}
		fmt.Fprintf(os.Stderr, "%d records\n", len(recs))
	case "trim":
		head, tail, err := client.Trim(types.SN(*sn), c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("log bounds now [%d, %d]\n", uint64(head), uint64(tail))
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
}
