package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flexlog/internal/deploy"
	"flexlog/internal/proto"
	"flexlog/internal/replica"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// ctrlConn is a minimal control-plane client: a raw transport endpoint
// whose handler routes CtrlAck replies back to the caller by Seq. The
// data-path client (core.Client) is deliberately not used — control
// operations must work against a replica that is joining or draining and
// therefore rejecting data-path traffic.
type ctrlConn struct {
	ep      transport.Endpoint
	timeout time.Duration
	seq     uint64
	acks    chan proto.CtrlAck
}

func dialCtrl(book *transport.AddressBook, codec transport.Codec, id types.NodeID, timeout time.Duration) (*ctrlConn, error) {
	c := &ctrlConn{timeout: timeout, acks: make(chan proto.CtrlAck, 16)}
	ep, err := transport.ListenTCP(id, book, func(from types.NodeID, msg transport.Message) {
		if ack, ok := msg.(proto.CtrlAck); ok {
			select {
			case c.acks <- ack:
			default:
			}
		}
	}, transport.WithTCPCodec(codec))
	if err != nil {
		return nil, err
	}
	c.ep = ep
	return c, nil
}

func (c *ctrlConn) close() { c.ep.Close() }

// roundTrip sends one CtrlReconfig to node and waits for the Seq-matched
// CtrlAck, retransmitting periodically: a server replying to a fresh CLI
// process over a cached-but-dead reverse connection loses exactly one
// reply (the failed write evicts the connection), so the retry's answer
// gets through. All ctrl ops are idempotent, and stray acks from earlier
// rounds are discarded by Seq.
func (c *ctrlConn) roundTrip(node types.NodeID, op uint8, donor types.NodeID) (proto.CtrlAck, error) {
	c.seq++
	req := proto.CtrlReconfig{Seq: c.seq, Op: op, Donor: donor, From: c.ep.ID()}
	if err := c.ep.Send(node, req); err != nil {
		return proto.CtrlAck{}, fmt.Errorf("send to node %d: %w", node, err)
	}
	retry := c.timeout / 4
	if retry > 500*time.Millisecond {
		retry = 500 * time.Millisecond
	}
	resend := time.NewTicker(retry)
	defer resend.Stop()
	deadline := time.After(c.timeout)
	for {
		select {
		case ack := <-c.acks:
			if ack.Seq == c.seq {
				return ack, nil
			}
		case <-resend.C:
			if err := c.ep.Send(node, req); err != nil {
				return proto.CtrlAck{}, fmt.Errorf("send to node %d: %w", node, err)
			}
		case <-deadline:
			return proto.CtrlAck{}, fmt.Errorf("node %d: no CtrlAck within %s", node, c.timeout)
		}
	}
}

// replicaNodes lists every replica-role node in the manifest (members
// and spares), sorted.
func replicaNodes(m *deploy.Manifest) []types.NodeID {
	var out []types.NodeID
	for _, id := range m.NodeIDs() {
		if m.RoleOf(id).Kind == "replica" {
			out = append(out, id)
		}
	}
	return out
}

// pushTopoAll ships a mutated snapshot to every replica-role node. The
// manifest's layout can lag the live cluster (earlier reconfigurations
// bumped versions the manifest never saw), so the snapshot is stamped
// strictly above every node's live version first — otherwise the fencing
// rule would rightly drop it as stale.
func (c *ctrlConn) pushTopoAll(m *deploy.Manifest, snap topology.Snapshot) error {
	nodes := replicaNodes(m)
	for _, id := range nodes {
		ack, err := c.roundTrip(id, proto.CtrlOpStatus, 0)
		if err != nil {
			return fmt.Errorf("probing node %d's topology version: %w", id, err)
		}
		if ack.Version >= snap.Version {
			snap.Version = ack.Version + 1
		}
	}
	for _, id := range nodes {
		if err := c.pushTopo(id, snap); err != nil {
			return err
		}
	}
	return nil
}

// pushTopo ships a topology snapshot to node and confirms via a status
// round-trip that the node's fencing version advanced to it.
func (c *ctrlConn) pushTopo(node types.NodeID, snap topology.Snapshot) error {
	if err := c.ep.Send(node, topology.SnapshotToWire(snap, c.ep.ID())); err != nil {
		return fmt.Errorf("send to node %d: %w", node, err)
	}
	ack, err := c.roundTrip(node, proto.CtrlOpStatus, 0)
	if err != nil {
		return err
	}
	if ack.Version < snap.Version {
		return fmt.Errorf("node %d still at topology version %d (pushed %d) — stale snapshots are fenced; bump -version past the node's", node, ack.Version, snap.Version)
	}
	fmt.Printf("node %d now at topology version %d\n", node, ack.Version)
	return nil
}

func printAck(ack proto.CtrlAck) {
	status := "ok"
	if !ack.OK {
		status = "REFUSED"
	}
	fmt.Printf("node %d: %s mode=%s lag=%d topology-version=%d\n",
		ack.From, status, replica.Mode(ack.Mode), ack.Lag, ack.Version)
}

// runReconfig dispatches the `reconfig` subcommand family. Each operation
// is one CtrlReconfig round-trip (or an orchestrated sequence of them for
// add-replica); the OPERATIONS.md "Reconfiguration runbook" walks through
// the full add/drain procedures these commands implement.
func runReconfig(m *deploy.Manifest, topo *topology.Topology, book *transport.AddressBook, codec transport.Codec, id types.NodeID, timeout time.Duration, args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flexlog-cli ... reconfig <status|join|promote|drain|push-topo|add-replica|remove-replica> [flags]")
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	sub := flag.NewFlagSet("reconfig "+cmd, flag.ExitOnError)
	node := sub.Uint("node", 0, "target node id")
	donor := sub.Uint("donor", 0, "donor node id (join, add-replica)")
	lag := sub.Uint64("lag", 256, "promotion lag threshold in records (add-replica)")
	version := sub.Uint64("version", 0, "override the pushed topology version (push-topo); 0 keeps the manifest's")
	poll := sub.Duration("poll", 200*time.Millisecond, "status poll interval (add-replica)")
	if err := sub.Parse(rest); err != nil {
		log.Fatal(err)
	}
	if *node == 0 {
		log.Fatal("reconfig: -node is required")
	}
	target := types.NodeID(*node)

	conn, err := dialCtrl(book, codec, id, timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.close()

	switch cmd {
	case "status":
		ack, err := conn.roundTrip(target, proto.CtrlOpStatus, 0)
		if err != nil {
			log.Fatal(err)
		}
		printAck(ack)
	case "join":
		if *donor == 0 {
			log.Fatal("reconfig join: -donor is required")
		}
		ack, err := conn.roundTrip(target, proto.CtrlOpJoin, types.NodeID(*donor))
		if err != nil {
			log.Fatal(err)
		}
		printAck(ack)
	case "promote":
		ack, err := conn.roundTrip(target, proto.CtrlOpPromote, 0)
		if err != nil {
			log.Fatal(err)
		}
		printAck(ack)
	case "drain":
		ack, err := conn.roundTrip(target, proto.CtrlOpDrain, 0)
		if err != nil {
			log.Fatal(err)
		}
		printAck(ack)
	case "push-topo":
		snap := topo.Snapshot()
		if *version != 0 {
			snap.Version = *version
		}
		if err := conn.pushTopo(target, snap); err != nil {
			log.Fatal(err)
		}
	case "add-replica":
		if *donor == 0 {
			log.Fatal("reconfig add-replica: -donor is required")
		}
		if err := addReplica(conn, m, topo, target, types.NodeID(*donor), *lag, *poll); err != nil {
			log.Fatal(err)
		}
	case "remove-replica":
		if err := removeReplica(conn, m, topo, target, *poll); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown reconfig command %q\n", cmd)
		os.Exit(2)
	}
}

// addReplica runs the orchestrated replica-add against an already-running
// spare replica process, in the same order as the in-process controller
// (DESIGN.md §15): start the join, poll until the catch-up lag is at or
// below the threshold, push the WIDENED membership to every replica-role
// node (the spare's peers must know about it before it syncs, or its
// sync-phase pulls and subsequent replication would be refused), promote,
// and poll until the replica reports operational. The operator then moves
// the node from "spares" into the shard's replica list in the manifest so
// restarts and future clients see the widened membership — see the
// runbook for the full procedure.
func addReplica(conn *ctrlConn, m *deploy.Manifest, topo *topology.Topology, target, donor types.NodeID, lagThreshold uint64, poll time.Duration) error {
	// Resolve the shard the spare targets (manifest spares entry, or the
	// donor's shard when the operator skipped the spares declaration).
	role := m.RoleOf(target)
	if role.Kind != "replica" {
		return fmt.Errorf("node %d has no replica role in the manifest — declare it under \"spares\"", target)
	}
	sh, err := topo.Shard(role.Shard)
	if err != nil {
		return err
	}
	for _, r := range sh.Replicas {
		if r == target {
			return fmt.Errorf("node %d is already a member of shard %d", target, role.Shard)
		}
	}

	ack, err := conn.roundTrip(target, proto.CtrlOpJoin, donor)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("node %d refused join (donor %d)", target, donor)
	}
	fmt.Printf("node %d joining shard %d from donor %d\n", target, role.Shard, donor)
	for {
		time.Sleep(poll)
		ack, err = conn.roundTrip(target, proto.CtrlOpStatus, 0)
		if err != nil {
			return err
		}
		if replica.Mode(ack.Mode) != replica.ModeJoining {
			break // already promoted out-of-band, or join collapsed
		}
		fmt.Printf("  catch-up lag %d (threshold %d)\n", ack.Lag, lagThreshold)
		if ack.Lag <= lagThreshold {
			break
		}
	}

	// Membership cutover BEFORE promote: widen the local copy of the
	// layout (bumping the fencing version) and ship it to every
	// replica-role node, the target included. Sequencers only consume the
	// region tree, which this does not change.
	if err := topo.AddReplicaToShard(role.Shard, target); err != nil {
		return err
	}
	if err := conn.pushTopoAll(m, topo.Snapshot()); err != nil {
		return fmt.Errorf("pushing widened membership: %w", err)
	}

	ack, err = conn.roundTrip(target, proto.CtrlOpPromote, 0)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("node %d refused promote", target)
	}
	for replica.Mode(ack.Mode) != replica.ModeOperational {
		time.Sleep(poll)
		ack, err = conn.roundTrip(target, proto.CtrlOpStatus, 0)
		if err != nil {
			return err
		}
	}
	fmt.Printf("node %d operational in shard %d at topology version %d\n", target, role.Shard, ack.Version)
	fmt.Println("next: move the node from \"spares\" into the shard's replica list in the manifest (see OPERATIONS.md)")
	return nil
}

// removeReplica runs the orchestrated drain, in the same order as the
// in-process controller: narrow the membership FIRST and push it to every
// replica-role node (peers must stop counting on the leaver's acks before
// it starts rejecting appends), then drain the leaver and poll until its
// pending orders flush. The operator then stops the process and deletes
// the node from the manifest's shard replica list.
func removeReplica(conn *ctrlConn, m *deploy.Manifest, topo *topology.Topology, target types.NodeID, poll time.Duration) error {
	sh, ok := topo.ShardOfReplica(target)
	if !ok {
		return fmt.Errorf("node %d is not a member of any shard", target)
	}
	if len(sh.Replicas) <= 1 {
		return fmt.Errorf("node %d is shard %d's last replica — draining it would lose the shard", target, sh.ID)
	}
	if err := topo.RemoveReplicaFromShard(sh.ID, target); err != nil {
		return err
	}
	if err := conn.pushTopoAll(m, topo.Snapshot()); err != nil {
		return fmt.Errorf("pushing narrowed membership: %w", err)
	}

	ack, err := conn.roundTrip(target, proto.CtrlOpDrain, 0)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("node %d refused drain", target)
	}
	for {
		ack, err = conn.roundTrip(target, proto.CtrlOpStatus, 0)
		if err != nil {
			return err
		}
		if replica.Mode(ack.Mode) != replica.ModeDraining || ack.Lag == 0 {
			break
		}
		fmt.Printf("  draining: %d pending orders\n", ack.Lag)
		time.Sleep(poll)
	}
	fmt.Printf("node %d drained out of shard %d at topology version %d\n", target, sh.ID, ack.Version)
	fmt.Println("next: stop the process and delete the node from the shard's replica list in the manifest (see OPERATIONS.md)")
	return nil
}
