// Command flexlog-bench regenerates the tables and figures of the FlexLog
// paper's evaluation (§9).
//
// Usage:
//
//	flexlog-bench -list
//	flexlog-bench [-quick] [-chaos] [-duration 2s] [-codec binary] [-cpuprofile f] [-memprofile f] [-blockprofile f] [-mutexprofile f] <experiment-id>... | all
//
// Experiment ids: table1, fig1, fig4lat, fig4thr, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, ablate-batch, ablate-cache, ablate-readhold,
// ablate-clientbatch, ablate-readpath, ablate-writepath, ablate-tiering,
// ablate-obs, ablate-codec, ablate-qos, ablate-seq, ext-burst, chaos (also
// runnable via -chaos).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"flexlog/internal/bench"
	"flexlog/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	chaosRun := flag.Bool("chaos", false, "run the seeded chaos soak (availability per nemesis); shorthand for the 'chaos' experiment id")
	quick := flag.Bool("quick", false, "shrink sweeps and durations (CI mode)")
	duration := flag.Duration("duration", 0, "measurement window per point (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the experiment runs to this file")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile (lock/channel contention) of the experiment runs to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile (who held locks others waited on) of the experiment runs to this file")
	metricsDump := flag.String("metrics-dump", "", "wire the obs-aware experiments into a registry and write its Prometheus snapshot to this file on exit (\"-\" for stdout)")
	codec := flag.String("codec", "", "pin the TCP wire codec (gob|binary) for socket-level experiments like ablate-codec (default: run both)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if *chaosRun {
		args = append(args, "chaos")
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flexlog-bench [-quick] [-chaos] <experiment-id>... | all   (see -list)")
		os.Exit(2)
	}

	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	rcfg := bench.RunConfig{Quick: *quick, Duration: *duration, Codec: *codec}
	var reg *obs.Registry
	if *metricsDump != "" {
		reg = obs.NewRegistry()
		rcfg.Obs = reg
	}

	// run is a separate function so the profiling defers fire before the
	// process exits with the failure count.
	failed := run(ids, rcfg, *cpuprofile, *memprofile, *blockprofile, *mutexprofile)
	if reg != nil {
		if err := dumpMetrics(*metricsDump, reg); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-dump: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpMetrics writes the registry snapshot to path ("-" = stdout).
func dumpMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}

func run(ids []string, cfg bench.RunConfig, cpuprofile, memprofile, blockprofile, mutexprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if blockprofile != "" {
		// Sample every blocking event: the write path's interesting costs
		// are lock waits (store index/allocator locks) and channel waits
		// (lane queues, commit windows), both invisible to the CPU profile.
		runtime.SetBlockProfileRate(1)
		defer func() {
			f, err := os.Create(blockprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "blockprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "blockprofile: %v\n", err)
			}
		}()
	}
	if mutexprofile != "" {
		// Record every contended mutex: the sequencer hot path claims to be
		// lock-free, and this profile is the direct before/after evidence —
		// a contended seq.(*Sequencer) mutex here means the claim regressed.
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(mutexprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mutexprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mutexprofile: %v\n", err)
			}
		}()
	}
	defer func() {
		if memprofile == "" {
			return
		}
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // report live allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}()

	failed := 0
	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return failed
}
