// Command flexlog-bench regenerates the tables and figures of the FlexLog
// paper's evaluation (§9).
//
// Usage:
//
//	flexlog-bench -list
//	flexlog-bench [-quick] [-duration 2s] <experiment-id>... | all
//
// Experiment ids: table1, fig1, fig4lat, fig4thr, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, ablate-batch, ablate-cache, ablate-readhold.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flexlog/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "shrink sweeps and durations (CI mode)")
	duration := flag.Duration("duration", 0, "measurement window per point (0 = default)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flexlog-bench [-quick] <experiment-id>... | all   (see -list)")
		os.Exit(2)
	}

	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	cfg := bench.RunConfig{Quick: *quick, Duration: *duration}
	failed := 0
	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
