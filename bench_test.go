// Package flexlog's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation (each drives the same
// experiment harness as cmd/flexlog-bench in quick mode and reports the
// headline number as a custom metric), plus micro-benchmarks of the hot
// paths (storage put/get, ordering round, end-to-end append/read).
//
// Run with:
//
//	go test -bench=. -benchmem
package flexlog

import (
	"fmt"
	"testing"

	"flexlog/internal/bench"
	"flexlog/internal/core"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

// runQuick executes one harness experiment per benchmark iteration and
// reports the value of (series, label) as a custom metric.
func runQuick(b *testing.B, id, series, label, metric string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(bench.RunConfig{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		v, ok := rep.Value(series, label)
		if !ok {
			b.Fatalf("experiment %s has no point (%s, %s)", id, series, label)
		}
		last = v
	}
	b.ReportMetric(last, metric)
}

// ---- One benchmark per table/figure (§9) ----

func BenchmarkTable1Profile(b *testing.B) {
	runQuick(b, "table1", "Video processing", "Total", "storage_pct")
}

func BenchmarkFig1StorageLatency(b *testing.B) {
	runQuick(b, "fig1", "pmem_read", "1024", "pm_read_ns")
}

func BenchmarkFig4OrderingLatency(b *testing.B) {
	runQuick(b, "fig4lat", "FlexLog", "10", "order_usec")
}

func BenchmarkFig4OrderingThroughput(b *testing.B) {
	runQuick(b, "fig4thr", "FlexLog", "10", "kops_per_sec")
}

func BenchmarkFig5RecordSize(b *testing.B) {
	runQuick(b, "fig5", "FlexLog (PM)", "1K", "ops_per_sec")
}

func BenchmarkFig6Threads(b *testing.B) {
	runQuick(b, "fig6", "FlexLog (PM)", "12", "ops_per_sec")
}

func BenchmarkFig7ReadRatio(b *testing.B) {
	runQuick(b, "fig7", "FlexLog (PM)", "50", "ops_per_sec")
}

func BenchmarkFig8Replication(b *testing.B) {
	runQuick(b, "fig8", "Appends", "3", "append_ms")
}

func BenchmarkFig9Sequencers(b *testing.B) {
	runQuick(b, "fig9", "FlexLog ordering", "4", "mreqs_per_sec")
}

func BenchmarkFig10Recovery(b *testing.B) {
	runQuick(b, "fig10", "Recovery time", "100K", "recovery_ms")
}

func BenchmarkFig11Shards(b *testing.B) {
	runQuick(b, "fig11", "Throughput (6 shards)", "4", "kops_per_sec")
}

func BenchmarkAblateBatchWindow(b *testing.B) {
	runQuick(b, "ablate-batch", "Root msgs per request", "100µs", "root_msgs_per_req")
}

func BenchmarkAblateCache(b *testing.B) {
	runQuick(b, "ablate-cache", "Cache hit rate", "on", "hit_pct")
}

func BenchmarkAblateReadHold(b *testing.B) {
	runQuick(b, "ablate-readhold", "Read success", "5ms", "success_pct")
}

// ---- Micro-benchmarks of the hot paths ----

func BenchmarkStoragePut(b *testing.B) {
	st, err := storage.New(storage.Config{
		SegmentSize: 4 << 20, NumSegments: 32, CacheBytes: 8 << 20,
		PMModel: pmem.Zero(), SSDModel: ssd.Zero(),
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Payload(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := types.Token(i + 1)
		if err := st.Put(1, tok, payload); err != nil {
			b.Fatal(err)
		}
		if err := st.Commit(tok, types.MakeSN(1, uint32(i+1))); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			st.Trim(1, types.MakeSN(1, uint32(i-2048)))
		}
	}
}

func BenchmarkStorageGet(b *testing.B) {
	st, err := storage.New(storage.Config{
		SegmentSize: 4 << 20, NumSegments: 8, CacheBytes: 8 << 20,
		PMModel: pmem.Zero(), SSDModel: ssd.Zero(),
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Payload(1024, 1)
	const n = 1000
	for i := 1; i <= n; i++ {
		st.Put(1, types.Token(i), payload)
		st.Commit(types.Token(i), types.MakeSN(1, uint32(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(1, types.MakeSN(1, uint32(i%n+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndAppend(b *testing.B) {
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	client, err := cluster.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Payload(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Append([][]byte{payload}, types.MasterColor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndRead(b *testing.B) {
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	client, err := cluster.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Payload(256, 2)
	const n = 64
	sns := make([]types.SN, n)
	for i := 0; i < n; i++ {
		sn, err := client.Append([][]byte{payload}, types.MasterColor)
		if err != nil {
			b.Fatal(err)
		}
		sns[i] = sn
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(sns[i%n], types.MasterColor); err != nil {
			b.Fatal(err)
		}
	}
}

// Ensure the registry and ids stay in sync with the documented set.
func TestBenchmarkIDsExist(t *testing.T) {
	for _, id := range []string{
		"table1", "fig1", "fig4lat", "fig4thr", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11",
		"ablate-batch", "ablate-cache", "ablate-readhold",
	} {
		if _, ok := bench.ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	_ = fmt.Sprint // keep fmt for future debug output
}
